// Package simcore provides a deterministic discrete-event simulation engine:
// a virtual clock, a time-ordered event queue, and seeded random number
// generation. It is the foundation of the network emulator in
// internal/netsim and of the RL training environments.
package simcore

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (FIFO), which keeps simulations deterministic.
//
// Events are pooled: once an event has fired (or a cancelled event has been
// drained), the engine recycles its storage for a future Schedule call.
// Callers therefore never hold *Event directly — Schedule returns a Timer
// handle carrying a generation number, so operations on a stale handle are
// safe no-ops instead of corrupting an unrelated recycled event.
type Event struct {
	at  time.Duration
	seq uint64

	// Exactly one of fn/argFn is set. argFn+arg lets hot paths schedule a
	// per-object callback without allocating a fresh closure per event.
	fn    func()
	argFn func(any)
	arg   any

	index     int    // heap index; -1 when not queued
	gen       uint64 // bumped on recycle; Timer handles check it
	cancelled bool
}

// Timer is a cancellable handle to a scheduled event. The zero value is an
// inert handle: Cancel and Active are no-ops on it. Handles are plain
// values; copying one is fine.
type Timer struct {
	ev  *Event
	gen uint64
}

// Cancel prevents the pending event from firing. Cancelling an event that
// has already fired, was already cancelled, or whose storage has been
// recycled for a newer event is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.cancelled = true
	}
}

// Active reports whether the event is still queued and uncancelled.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && t.ev.index >= 0
}

// At reports the virtual time at which the event fires (0 for inert or
// recycled handles).
func (t Timer) At() time.Duration {
	if t.ev == nil || t.ev.gen != t.gen {
		return 0
	}
	return t.ev.at
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	nextSeq uint64
	running bool
	stopped bool

	// free is the event free-list: fired/drained events are recycled here so
	// steady-state simulation schedules without heap allocation (packet-level
	// runs schedule one event per packet hop).
	free []*Event

	// eventHook, when non-nil, observes every executed event (its firing
	// time and sequence number) just before the callback runs. The
	// correctness harness (internal/simcheck) uses it to verify clock
	// monotonicity and to fold the full event stream into a digest, so two
	// runs of the same scenario can be compared bit-for-bit.
	eventHook func(at time.Duration, seq uint64)
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been drained).
func (e *Engine) Pending() int { return len(e.queue) }

// alloc takes an event from the free-list (or allocates one) and enqueues
// it at the given time.
func (e *Engine) alloc(at time.Duration) *Event {
	if at < e.now {
		panic(fmt.Sprintf("simcore: schedule at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = at
	ev.seq = e.nextSeq
	ev.cancelled = false
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// release returns a fired or drained event to the free-list, invalidating
// outstanding Timer handles via the generation counter.
func (e *Engine) release(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// Schedule queues fn to run at absolute virtual time at and returns a
// cancellable handle. Scheduling in the past (before Now) panics: it always
// indicates a simulation bug, and silently clamping would corrupt causality.
func (e *Engine) Schedule(at time.Duration, fn func()) Timer {
	ev := e.alloc(at)
	ev.fn = fn
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleAfter queues fn to run after delay d from the current time.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleArg queues fn(arg) at absolute virtual time at. Unlike Schedule,
// it takes a long-lived callback plus a per-event argument, so hot paths
// (one event per packet hop) do not allocate a closure per call.
func (e *Engine) ScheduleArg(at time.Duration, fn func(any), arg any) Timer {
	ev := e.alloc(at)
	ev.argFn = fn
	ev.arg = arg
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleArgAfter queues fn(arg) after delay d from the current time.
func (e *Engine) ScheduleArgAfter(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.ScheduleArg(e.now+d, fn, arg)
}

// SetEventHook registers fn to observe every executed event. The hook runs
// on the simulation goroutine immediately before each event's callback, with
// the event's firing time and global sequence number. A nil fn detaches the
// hook. At most one hook is registered at a time; internal/simcheck
// multiplexes its checks over it.
func (e *Engine) SetEventHook(fn func(at time.Duration, seq uint64)) {
	e.eventHook = fn
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, the horizon is
// reached, or Stop is called. Events scheduled exactly at the horizon still
// fire; events strictly after it remain queued. It returns the number of
// events executed.
func (e *Engine) Run(horizon time.Duration) int {
	if e.running {
		panic("simcore: Run re-entered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	executed := 0
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		if e.eventHook != nil {
			e.eventHook(ev.at, ev.seq)
		}
		if ev.argFn != nil {
			ev.argFn(ev.arg)
		} else {
			ev.fn()
		}
		executed++
		e.release(ev)
	}
	if e.now < horizon && !e.stopped {
		// Advance the clock to the horizon so repeated Run calls observe
		// monotonic time even when the queue drains early.
		e.now = horizon
	}
	return executed
}
