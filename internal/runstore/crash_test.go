// Crash and corruption harness. failingFile simulates a power cut by dying
// after a byte budget; the matrix tests replay that cut at EVERY byte offset
// of the write stream and assert the reopened store always yields an intact
// prefix of the reference records, never a corrupted or reordered view, and
// that the interrupted run completes after resume. The bit-flip sweep proves
// the complementary property: any single flipped bit on disk is detected.
package runstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// crashState is shared across every file a store opens (WAL, snapshot.tmp),
// so one budget covers the whole write stream like a single power rail.
type crashState struct {
	budget int64 // bytes that may still be written
	dead   bool  // first failure latches: a crashed machine stays crashed
}

type failingFile struct {
	f  *os.File
	st *crashState
}

func failingOpen(st *crashState) func(path string) (file, error) {
	return func(path string) (file, error) {
		if st.dead {
			return nil, os.ErrClosed
		}
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		return &failingFile{f: f, st: st}, nil
	}
}

func (f *failingFile) WriteAt(p []byte, off int64) (int, error) {
	if f.st.dead {
		return 0, os.ErrClosed
	}
	if int64(len(p)) > f.st.budget {
		n := int(f.st.budget)
		f.st.budget = 0
		f.st.dead = true
		if n > 0 {
			f.f.WriteAt(p[:n], off) // the torn partial write of the crash
		}
		return n, os.ErrClosed
	}
	f.st.budget -= int64(len(p))
	return f.f.WriteAt(p, off)
}

func (f *failingFile) Truncate(size int64) error {
	if f.st.dead {
		return os.ErrClosed
	}
	return f.f.Truncate(size)
}

func (f *failingFile) Sync() error {
	if f.st.dead {
		return os.ErrClosed
	}
	return f.f.Sync()
}

func (f *failingFile) Stat() (os.FileInfo, error) {
	if f.st.dead {
		return nil, os.ErrClosed
	}
	return f.f.Stat()
}

func (f *failingFile) Close() error { return f.f.Close() }

// crashRecords keeps the matrix sweeps fast: small records, every field
// populated, distinct keys.
func crashRecords(t *testing.T) []*Record {
	t.Helper()
	recs := randRecords(41, 4)
	for _, r := range recs {
		for i := range r.Flows {
			r.Flows[i].Series = nil // keep frames small: the sweep is byte-granular
		}
		r.Key = KeyOf(appendRecord(nil, r))
	}
	return recs
}

// writeStreamLen computes the total bytes a fresh store writes while
// appending recs: header + every frame.
func writeStreamLen(recs []*Record) int64 {
	n := int64(headerLen)
	for _, r := range recs {
		n += int64(len(appendFrame(nil, appendRecord(nil, r))))
	}
	return n
}

// TestCrashMatrix kills the write stream after every possible byte count,
// under every fsync policy, and proves crash-consistency: reopen always
// yields an intact prefix of the reference batch, and appending the missing
// records then yields exactly the full batch.
func TestCrashMatrix(t *testing.T) {
	recs := crashRecords(t)
	total := writeStreamLen(recs)
	if total > 4096 {
		t.Fatalf("crash records too big (%d bytes); the byte-granular sweep would be slow", total)
	}
	for _, pol := range []Policy{FsyncAlways, FsyncInterval, FsyncNever} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			t.Parallel()
			for budget := int64(0); budget < total; budget++ {
				dir := t.TempDir()
				st := &crashState{budget: budget}
				cs, err := Open(Options{Dir: dir, Fsync: pol, open: failingOpen(st)})
				if err == nil {
					for _, r := range recs {
						if err := cs.Put(r); err != nil {
							break // crashed mid-append; everything after is lost
						}
					}
					cs.Close() // best-effort, may fail on the dead file
				} else if !st.dead {
					t.Fatalf("budget %d: Open failed for a non-crash reason: %v", budget, err)
				}

				re := mustOpen(t, Options{Dir: dir, Fsync: pol})
				got := re.Records()
				if len(got) > len(recs) {
					t.Fatalf("budget %d: %d records from a %d-record run", budget, len(got), len(recs))
				}
				requireSameRecords(t, got, recs[:len(got)])

				// Resume: appending the lost suffix must complete the batch.
				putAll(t, re, recs[len(got):])
				requireSameRecords(t, re.Records(), recs)
				if err := re.Close(); err != nil {
					t.Fatalf("budget %d: close after resume: %v", budget, err)
				}
				fin := mustOpen(t, Options{Dir: dir, Fsync: pol})
				requireSameRecords(t, fin.Records(), recs)
				fin.Close()
			}
		})
	}
}

// TestCompactionCrashMatrix kills compaction after every possible byte count
// of the snapshot write. Whatever the cut point — mid-tmp-write, before or
// after the rename, before the WAL truncation — no record may be lost.
func TestCompactionCrashMatrix(t *testing.T) {
	recs := crashRecords(t)
	snapLen := int64(len(fileHeader(magicSnap)))
	for _, r := range recs {
		snapLen += int64(len(appendFrame(nil, appendRecord(nil, r))))
	}
	for budget := int64(0); budget <= snapLen; budget++ {
		dir := t.TempDir()
		st := mustOpen(t, Options{Dir: dir})
		putAll(t, st, recs)
		st.Close()

		// Reopen with the failing seam and crash inside Compact.
		cst := &crashState{budget: 1 << 30}
		cs, err := Open(Options{Dir: dir, open: failingOpen(cst)})
		if err != nil {
			t.Fatalf("budget %d: reopen: %v", budget, err)
		}
		cst.budget = budget
		cs.Compact() // expected to fail for budgets < snapLen
		cs.Close()

		re := mustOpen(t, Options{Dir: dir})
		requireSameRecords(t, re.Records(), recs)
		re.Close()
	}

	// The rename-committed-but-WAL-not-truncated window: snapshot and WAL
	// both hold the full batch. Replay must dedup, not duplicate.
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	putAll(t, st, recs)
	st.Close()
	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	snap := append(fileHeader(magicSnap), wal[headerLen:]...)
	if err := os.WriteFile(filepath.Join(dir, "snapshot.dat"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Options{Dir: dir})
	requireSameRecords(t, re.Records(), recs)
	re.Close()
}

// TestBitFlipSweep flips a bit at every byte offset of the WAL and the
// snapshot and proves total corruption coverage: the reopened store never
// serves a record that differs from its reference, and every flip is either
// reported by repair or (for snapshot header damage) by the salvage note.
// In -short mode the flipped bit rotates with the offset (every byte and
// every bit position still covered); the full run tries all 8 bits per byte.
func TestBitFlipSweep(t *testing.T) {
	recs := crashRecords(t)
	build := func(compact bool) string {
		dir := t.TempDir()
		st := mustOpen(t, Options{Dir: dir})
		putAll(t, st, recs)
		if compact {
			if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
		return dir
	}
	byKey := map[Key]*Record{}
	for _, r := range recs {
		byKey[r.Key] = r
	}

	for _, target := range []struct {
		name    string
		compact bool
	}{{"wal.log", false}, {"snapshot.dat", true}} {
		target := target
		t.Run(target.name, func(t *testing.T) {
			t.Parallel()
			srcDir := build(target.compact)
			pristine, err := os.ReadFile(filepath.Join(srcDir, target.name))
			if err != nil {
				t.Fatal(err)
			}
			for off := 0; off < len(pristine); off++ {
				bits := []int{0, 1, 2, 3, 4, 5, 6, 7}
				if testing.Short() {
					bits = bits[off%8 : off%8+1]
				}
				for _, bit := range bits {
					dir := t.TempDir()
					mut := append([]byte(nil), pristine...)
					mut[off] ^= 1 << bit
					if err := os.WriteFile(filepath.Join(dir, target.name), mut, 0o644); err != nil {
						t.Fatal(err)
					}
					st, err := Open(Options{Dir: dir})
					if err != nil {
						t.Fatalf("offset %d bit %d: Open: %v", off, bit, err)
					}
					rep := st.Repair()
					got := st.Records()
					for _, g := range got {
						ref, ok := byKey[g.Key]
						if !ok || !reflect.DeepEqual(g, ref) {
							t.Fatalf("offset %d bit %d: corrupted record served: %+v", off, bit, g)
						}
					}
					detected := rep.Dirty() || rep.WALNote != "" || rep.SnapshotNote != "" ||
						len(got) < len(recs)
					if !detected {
						t.Fatalf("offset %d bit %d: flip neither detected nor dropped (served %d records)", off, bit, len(got))
					}
					// Prefix property: the scan stops at the first damaged
					// frame, so the served records are a prefix of the batch.
					for i, g := range got {
						if !bytes.Equal(appendRecord(nil, g), appendRecord(nil, recs[i])) {
							t.Fatalf("offset %d bit %d: served records are not an in-order prefix", off, bit)
						}
					}
					st.Close()
				}
			}
		})
	}
}
