package runstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Sentinel errors.
var (
	ErrReadOnly = errors.New("runstore: store is read-only")
	ErrClosed   = errors.New("runstore: store is closed")
	// ErrDigestMismatch means a re-executed run produced a different
	// simcheck digest than the record already stored under the same key:
	// either the simulator became nondeterministic or the key schema no
	// longer captures an input that matters. Both are bugs worth failing a
	// sweep over.
	ErrDigestMismatch = errors.New("runstore: digest mismatch for existing key")
)

// file is the handle surface the store's write path needs. It is an
// interface so the crash tests can substitute a failingFile that dies after
// N bytes, simulating a power cut at every possible record boundary.
type file interface {
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

func defaultOpen(path string) (file, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}

// Options configures Open.
type Options struct {
	// Dir is the store directory; it holds wal.log and snapshot.dat.
	Dir string
	// Fsync is the WAL flush policy (default FsyncInterval).
	Fsync Policy
	// FsyncInterval is the minimum wall-clock spacing of syncs under
	// FsyncInterval (default 1s).
	FsyncInterval time.Duration
	// CompactEvery, when positive, folds the WAL into the snapshot after
	// that many appends. Zero means compaction only on explicit Compact.
	CompactEvery int
	// ReadOnly opens the store for inspection: repair is computed in memory
	// but nothing on disk is modified, and Put/Compact fail with ErrReadOnly.
	ReadOnly bool

	// open is the file-open seam the crash-injection tests replace.
	open func(path string) (file, error)
}

// RepairReport describes what startup repair found (and, unless the store
// is read-only, fixed by truncation).
type RepairReport struct {
	SnapshotRecords  int
	SnapshotTorn     int64 // snapshot bytes after the last valid record
	SnapshotNote     string
	WALRecords       int
	WALTorn          int64 // WAL bytes truncated (torn tail / corrupt suffix)
	WALNote          string
	HeaderRewritten  bool // the WAL header itself was damaged and rewritten
	DroppedTornBytes int64
}

// Dirty reports whether repair found anything wrong.
func (r RepairReport) Dirty() bool {
	return r.SnapshotTorn != 0 || r.WALTorn != 0 || r.HeaderRewritten
}

// Stats counts store activity since Open.
type Stats struct {
	Appends     int64
	Compactions int64
}

// Store is an append-only, checksummed, content-addressed store of run
// records: an in-memory index (one record per key, insertion-ordered)
// backed by snapshot.dat + wal.log. All methods are safe for concurrent use
// by the parallel sweep runner.
type Store struct {
	mu   sync.Mutex
	opts Options

	wal        file // nil when read-only
	goodOff    int64
	lastSync   time.Time
	walAppends int

	recs   []*Record
	byKey  map[Key]int // key -> index into recs
	repair RepairReport
	stats  Stats
	closed bool
}

func (o *Options) walPath() string  { return filepath.Join(o.Dir, "wal.log") }
func (o *Options) snapPath() string { return filepath.Join(o.Dir, "snapshot.dat") }
func (o *Options) tmpPath() string  { return filepath.Join(o.Dir, "snapshot.tmp") }

// Open loads (and, unless ReadOnly, repairs) the store in opts.Dir,
// creating it if needed. Load order is snapshot first, then WAL, with
// last-write-wins per key, so a crash between compaction's snapshot rename
// and WAL truncation only produces harmless duplicates.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("runstore: no directory")
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = time.Second
	}
	if opts.open == nil {
		opts.open = defaultOpen
	}
	s := &Store{opts: opts, byKey: make(map[Key]int)}
	if !opts.ReadOnly {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
		// A leftover snapshot.tmp is a compaction that died mid-write.
		os.Remove(opts.tmpPath())
	}

	// Snapshot: never mutated here (the next compaction rewrites it), but a
	// damaged header or tail drops the unreadable suffix from the index.
	if data, err := os.ReadFile(opts.snapPath()); err == nil {
		recs, rep := loadRecordFile(data, magicSnap)
		s.repair.SnapshotRecords = len(recs)
		s.repair.SnapshotTorn = rep.tornLen
		s.repair.SnapshotNote = rep.note
		for _, r := range recs {
			s.index(r)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("runstore: %w", err)
	}

	// WAL: parse, then truncate the file back to its last valid record so
	// appends land on a clean tail.
	walData, err := os.ReadFile(opts.walPath())
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var validOff int64 = headerLen
	switch {
	case len(walData) == 0:
		// Fresh store.
	default:
		recs, rep := loadRecordFile(walData, magicWAL)
		s.repair.WALRecords = len(recs)
		s.repair.WALTorn = rep.tornLen
		s.repair.WALNote = rep.note
		s.repair.HeaderRewritten = rep.headerBad
		if len(walData) >= headerLen {
			validOff = headerLen + rep.validLen
		}
		for _, r := range recs {
			s.index(r)
		}
	}
	s.repair.DroppedTornBytes = s.repair.SnapshotTorn + s.repair.WALTorn
	s.goodOff = validOff

	if !opts.ReadOnly {
		f, err := opts.open(opts.walPath())
		if err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
		s.wal = f
		if len(walData) < headerLen || s.repair.HeaderRewritten {
			if _, err := f.WriteAt(fileHeader(magicWAL), 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("runstore: writing WAL header: %w", err)
			}
		}
		if int64(len(walData)) != s.goodOff {
			if err := f.Truncate(s.goodOff); err != nil {
				f.Close()
				return nil, fmt.Errorf("runstore: truncating torn WAL tail: %w", err)
			}
		}
		if s.repair.Dirty() || len(walData) < headerLen {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("runstore: %w", err)
			}
		}
		s.lastSync = time.Now()
	}
	return s, nil
}

type loadReport struct {
	scanReport
	headerBad bool
}

// loadRecordFile validates a file image's header and scans its records. A
// damaged header is not fatal: the record region still carries its own
// CRCs, so the salvageable prefix is recovered and the header flagged for
// rewrite.
func loadRecordFile(data []byte, magic string) ([]*Record, loadReport) {
	var rep loadReport
	if err := checkHeader(data, magic); err != nil {
		rep.headerBad = true
		rep.note = err.Error()
		if len(data) <= headerLen {
			rep.tornLen = int64(len(data))
			return nil, rep
		}
	}
	sr := scanRecords(data[min(headerLen, len(data)):])
	note := rep.note
	rep.scanReport = sr
	if note != "" {
		rep.note = note // header damage is the primary finding
	}
	return sr.recs, rep
}

// index inserts rec with last-write-wins per key, preserving the insertion
// position of the first write so Records() stays in append order.
func (s *Store) index(rec *Record) {
	if i, ok := s.byKey[rec.Key]; ok {
		s.recs[i] = rec
		return
	}
	s.byKey[rec.Key] = len(s.recs)
	s.recs = append(s.recs, rec)
}

// healTail restores the WAL to its last known-good length. A previous Put
// that crashed or failed mid-write (or any foreign append) leaves bytes
// past goodOff; appending after them would poison every later record on
// replay, so they are cut first.
func (s *Store) healTail() error {
	fi, err := s.wal.Stat()
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if fi.Size() != s.goodOff {
		if err := s.wal.Truncate(s.goodOff); err != nil {
			return fmt.Errorf("runstore: truncating torn tail before append: %w", err)
		}
	}
	return nil
}

func (s *Store) maybeSync() error {
	switch s.opts.Fsync {
	case FsyncAlways:
	case FsyncInterval:
		if time.Since(s.lastSync) < s.opts.FsyncInterval {
			return nil
		}
	case FsyncNever:
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	s.lastSync = time.Now()
	return nil
}

// Put appends one record to the WAL and indexes it. Re-putting an existing
// key re-verifies determinism: if both the stored and the new record carry
// simcheck digests and they differ, Put refuses with ErrDigestMismatch.
func (s *Store) Put(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if i, ok := s.byKey[rec.Key]; ok {
		old := s.recs[i]
		if old.Checked && rec.Checked && old.Digest != rec.Digest {
			return fmt.Errorf("%w: key %s stored digest %016x, new run %016x",
				ErrDigestMismatch, rec.Key.Short(), old.Digest, rec.Digest)
		}
	}
	if rec.AppendedAt == 0 {
		rec.AppendedAt = time.Now().UnixNano()
	}
	frame := appendFrame(nil, appendRecord(nil, rec))
	if err := s.healTail(); err != nil {
		return err
	}
	if _, err := s.wal.WriteAt(frame, s.goodOff); err != nil {
		// Best-effort: cut whatever partial frame landed. If this fails too
		// (the injected-crash case), the next append's healTail retries and
		// startup repair truncates it regardless.
		s.wal.Truncate(s.goodOff)
		return fmt.Errorf("runstore: append: %w", err)
	}
	s.goodOff += int64(len(frame))
	if err := s.maybeSync(); err != nil {
		return err
	}
	s.index(rec)
	s.stats.Appends++
	s.walAppends++
	if s.opts.CompactEvery > 0 && s.walAppends >= s.opts.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// Get returns the record stored under key.
func (s *Store) Get(key Key) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	return s.recs[i], true
}

// Len reports the number of distinct keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns every record in insertion order.
func (s *Store) Records() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, len(s.recs))
	copy(out, s.recs)
	return out
}

func (s *Store) selectRecords(keep func(*Record) bool) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Record
	for _, r := range s.recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// ByScenario returns the records whose scenario label matches name.
func (s *Store) ByScenario(name string) []*Record {
	return s.selectRecords(func(r *Record) bool { return r.Scenario == name })
}

// ByScheme returns the records that ran scheme.
func (s *Store) ByScheme(scheme string) []*Record {
	return s.selectRecords(func(r *Record) bool {
		for _, sc := range r.Schemes {
			if sc == scheme {
				return true
			}
		}
		return false
	})
}

// ByDigest returns the records whose simcheck digest matches d.
func (s *Store) ByDigest(d uint64) []*Record {
	return s.selectRecords(func(r *Record) bool { return r.Checked && r.Digest == d })
}

// Between returns the records appended in [from, to).
func (s *Store) Between(from, to time.Time) []*Record {
	lo, hi := from.UnixNano(), to.UnixNano()
	return s.selectRecords(func(r *Record) bool { return r.AppendedAt >= lo && r.AppendedAt < hi })
}

// Repair returns what startup repair found.
func (s *Store) Repair() RepairReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repair
}

// StoreStats returns activity counters since Open.
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Compact folds the full index into a fresh snapshot and truncates the WAL:
// write snapshot.tmp, fsync, atomically rename over snapshot.dat, then cut
// the WAL back to its header. A crash anywhere in that sequence loses
// nothing — either the old snapshot + full WAL, or the new snapshot + a
// (possibly duplicate) WAL, both replay to the same index.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	buf := fileHeader(magicSnap)
	for _, rec := range s.recs {
		buf = appendFrame(buf, appendRecord(nil, rec))
	}
	tmp, err := s.opts.open(s.opts.tmpPath())
	if err != nil {
		return fmt.Errorf("runstore: compact: %w", err)
	}
	if _, err := tmp.WriteAt(buf, 0); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: compact: %w", err)
	}
	if err := os.Rename(s.opts.tmpPath(), s.opts.snapPath()); err != nil {
		return fmt.Errorf("runstore: compact: %w", err)
	}
	if err := s.wal.Truncate(headerLen); err != nil {
		return fmt.Errorf("runstore: compact: %w", err)
	}
	s.goodOff = headerLen
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("runstore: compact: %w", err)
	}
	s.lastSync = time.Now()
	s.walAppends = 0
	s.stats.Compactions++
	return nil
}

// Close flushes and releases the WAL handle. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	var err error
	if serr := s.wal.Sync(); serr != nil {
		err = serr
	}
	if cerr := s.wal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// FileReport is the integrity summary of one store file.
type FileReport struct {
	Present  bool
	HeaderOK bool
	Records  int
	Bytes    int64
	Torn     int64 // bytes after the last valid record
	Note     string
}

// VerifyReport is the outcome of a read-only integrity scan.
type VerifyReport struct {
	Snapshot FileReport
	WAL      FileReport
}

// Clean reports whether both files are fully intact.
func (v VerifyReport) Clean() bool {
	for _, f := range []FileReport{v.Snapshot, v.WAL} {
		if f.Present && (!f.HeaderOK || f.Torn != 0) {
			return false
		}
	}
	return true
}

// Verify scans a store directory without opening (or repairing) it,
// reporting per-file record counts and any corruption. I/O failures other
// than absence are returned as an error.
func Verify(dir string) (VerifyReport, error) {
	var rep VerifyReport
	for _, f := range []struct {
		path string
		magi string
		out  *FileReport
	}{
		{filepath.Join(dir, "snapshot.dat"), magicSnap, &rep.Snapshot},
		{filepath.Join(dir, "wal.log"), magicWAL, &rep.WAL},
	} {
		data, err := os.ReadFile(f.path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return rep, fmt.Errorf("runstore: verify: %w", err)
		}
		f.out.Present = true
		f.out.Bytes = int64(len(data))
		recs, lr := loadRecordFile(data, f.magi)
		f.out.HeaderOK = !lr.headerBad
		f.out.Records = len(recs)
		f.out.Torn = lr.tornLen
		f.out.Note = lr.note
	}
	return rep, nil
}
