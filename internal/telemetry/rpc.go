package telemetry

import "time"

// RPCServerStats is the structural slice of agentrpc.Server the hub
// exports (Decisions and Panics are mutex-guarded, safe to call from the
// debug HTTP goroutine).
type RPCServerStats interface {
	Decisions() int64
	Panics() int64
}

// ExportRPCServer registers callback gauges mirroring the inference
// server's served-request and policy-panic counters.
func (h *Hub) ExportRPCServer(s RPCServerStats) {
	if h == nil || s == nil {
		return
	}
	h.Registry.GaugeFunc("rpc_server_decisions", "requests served by the local inference server",
		func() float64 { return float64(s.Decisions()) })
	h.Registry.GaugeFunc("rpc_server_panics", "connections dropped by a panicking policy",
		func() float64 { return float64(s.Panics()) })
}

// RPCClientHook returns a latency hook for agentrpc.Client.SetLatencyHook:
// it feeds the round-trip histogram and the remote/fallback decision
// counters. Returns nil when the hub is disabled, so the client keeps its
// zero-cost nil-hook fast path.
func (h *Hub) RPCClientHook() func(d time.Duration, remote bool) {
	if h == nil {
		return nil
	}
	lat := h.Registry.Histogram("rpc_decide_seconds", "client-observed decision round-trip latency", ExpBuckets(1e-5, 2, 16))
	remoteC := h.Registry.Counter("rpc_remote_decisions_total", "policy decisions answered by the inference service")
	fallbackC := h.Registry.Counter("rpc_fallback_decisions_total", "policy decisions served by the local fallback")
	return func(d time.Duration, remote bool) {
		lat.Observe(d.Seconds())
		if remote {
			remoteC.Inc()
		} else {
			fallbackC.Inc()
		}
	}
}
