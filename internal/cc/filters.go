package cc

import "time"

// EWMA is an exponentially weighted moving average. The zero value is empty;
// the first Update seeds it.
type EWMA struct {
	alpha  float64
	value  float64
	seeded bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weights recent samples more.
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{alpha: alpha}
}

// Update folds sample in and returns the new average.
func (e *EWMA) Update(sample float64) float64 {
	if !e.seeded {
		e.value = sample
		e.seeded = true
		return e.value
	}
	e.value += e.alpha * (sample - e.value)
	return e.value
}

// Value reports the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether at least one sample has been folded in.
func (e *EWMA) Seeded() bool { return e.seeded }

// Reset clears the average.
func (e *EWMA) Reset() { e.value, e.seeded = 0, false }

// MovingAverage is a fixed-capacity sliding-window mean, used by Jury's
// signal-averaging stage (§3.4).
type MovingAverage struct {
	buf  []float64
	next int
	n    int
	sum  float64
}

// NewMovingAverage returns a window of the given size (minimum 1).
func NewMovingAverage(size int) *MovingAverage {
	if size < 1 {
		size = 1
	}
	return &MovingAverage{buf: make([]float64, size)}
}

// Update inserts a sample, evicting the oldest if full, and returns the mean.
func (m *MovingAverage) Update(sample float64) float64 {
	if m.n == len(m.buf) {
		m.sum -= m.buf[m.next]
	} else {
		m.n++
	}
	m.buf[m.next] = sample
	m.sum += sample
	m.next = (m.next + 1) % len(m.buf)
	return m.Value()
}

// Value reports the current mean (0 when empty).
func (m *MovingAverage) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Len reports how many samples are in the window.
func (m *MovingAverage) Len() int { return m.n }

// Reset empties the window.
func (m *MovingAverage) Reset() {
	m.next, m.n, m.sum = 0, 0, 0
}

// windowedSample pairs a value with its timestamp.
type windowedSample struct {
	at time.Duration
	v  float64
}

// WindowedMax tracks the maximum over a trailing time window using a
// monotonic deque — the estimator BBR uses for bottleneck bandwidth.
type WindowedMax struct {
	window time.Duration
	q      []windowedSample
}

// NewWindowedMax returns a max filter over the given trailing window.
func NewWindowedMax(window time.Duration) *WindowedMax {
	return &WindowedMax{window: window}
}

// Update inserts a sample at time now and returns the windowed maximum.
func (w *WindowedMax) Update(now time.Duration, v float64) float64 {
	for len(w.q) > 0 && w.q[len(w.q)-1].v <= v {
		w.q = w.q[:len(w.q)-1]
	}
	w.q = append(w.q, windowedSample{now, v})
	w.expire(now)
	return w.Value()
}

// SetWindow changes the trailing window length (BBR scales its bandwidth
// filter window with the RTT). Takes effect on the next Update.
func (w *WindowedMax) SetWindow(window time.Duration) { w.window = window }

func (w *WindowedMax) expire(now time.Duration) {
	for len(w.q) > 1 && now-w.q[0].at > w.window {
		w.q = w.q[1:]
	}
}

// Value reports the current windowed maximum (0 when empty).
func (w *WindowedMax) Value() float64 {
	if len(w.q) == 0 {
		return 0
	}
	return w.q[0].v
}

// WindowedMinRTT tracks the minimum RTT over a trailing time window — the
// propagation-delay estimator used by BBR, Copa, and Vegas.
type WindowedMinRTT struct {
	window time.Duration
	q      []windowedRTT
}

type windowedRTT struct {
	at  time.Duration
	rtt time.Duration
}

// NewWindowedMinRTT returns a min filter over the given trailing window.
// A zero window means "never expire" (lifetime minimum).
func NewWindowedMinRTT(window time.Duration) *WindowedMinRTT {
	return &WindowedMinRTT{window: window}
}

// SetWindow changes the trailing window length (Copa scales its standing-RTT
// filter window with srtt/2). Takes effect on the next Update; non-positive
// windows mean "never expire".
func (w *WindowedMinRTT) SetWindow(window time.Duration) { w.window = window }

// Update inserts an RTT sample at time now and returns the windowed minimum.
func (w *WindowedMinRTT) Update(now, rtt time.Duration) time.Duration {
	for len(w.q) > 0 && w.q[len(w.q)-1].rtt >= rtt {
		w.q = w.q[:len(w.q)-1]
	}
	w.q = append(w.q, windowedRTT{now, rtt})
	if w.window > 0 {
		for len(w.q) > 1 && now-w.q[0].at > w.window {
			w.q = w.q[1:]
		}
	}
	return w.Value()
}

// Value reports the current windowed minimum (0 when empty).
func (w *WindowedMinRTT) Value() time.Duration {
	if len(w.q) == 0 {
		return 0
	}
	return w.q[0].rtt
}
