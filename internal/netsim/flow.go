package netsim

import (
	"time"

	"repro/internal/cc"
	"repro/internal/simcore"
)

// DefaultPacketSize is the MSS used when FlowConfig.PacketSize is zero.
const DefaultPacketSize = 1500

// FlowConfig describes one sender/receiver pair.
type FlowConfig struct {
	Name string
	// Path is the ordered list of links the flow's packets traverse.
	Path []*Link
	// CC constructs the flow's congestion controller. Exactly one of CC and
	// Alg must be set; CC wins if both are.
	CC func() cc.Algorithm
	// Alg is the flow's congestion controller, pre-constructed. Bulk
	// scenario builders use it to hand each flow its controller without
	// wrapping every one in a factory closure.
	Alg cc.Algorithm
	// Start is when the flow begins sending.
	Start time.Duration
	// Duration bounds the sending period; zero means "until the horizon".
	Duration time.Duration
	// ExtraOneWay adds per-flow propagation delay in each direction, so
	// flows sharing a bottleneck can have heterogeneous base RTTs.
	ExtraOneWay time.Duration
	// PacketSize is the MSS in bytes (default DefaultPacketSize). High-speed
	// experiments scale it up to bound event counts.
	PacketSize int
}

// packet is one in-flight segment. Packets are pooled per shard (see
// pktArena): a packet is recycled once it terminates (ACKed or
// loss-detected), so steady-state sending allocates nothing per packet.
type packet struct {
	flow    *Flow
	size    int
	sentAt  time.Duration
	hop     int
	ctrlIdx int64 // send-interval index for interval-driven schemes
	// lossDelay is the sender's loss-detection delay stamped at send time
	// (srtt, or base RTT before any sample; ≥ 1ms). Sharded runs use it when
	// a packet drops on a link owned by another shard: the link cannot read
	// the flow's live srtt across shards, and the stamp is both race-free and
	// ≥ the inter-shard lookahead (every RTT sample ≥ baseRTT ≥ any cut
	// delay on the path, so srtt never falls below it).
	lossDelay time.Duration
	// dup marks a fault-injected duplicate copy: it occupies queue space and
	// serialization time on one link but is invisible to the sender's
	// accounting (never counted sent/acked/lost, discarded after departure).
	dup bool
}

// pktArena pools packets for every flow and link that runs on one shard.
// Pooling per shard rather than per flow keeps the pooled population
// proportional to the shard's peak in-flight packets instead of reserving a
// private slab per flow — the difference between megabytes and gigabytes at
// a million flows. Exactly one shard goroutine ever touches an arena: flows
// allocate at send and release at ACK/loss on their own shard, and
// fault-injected duplicate copies are cloned and released on the owning
// link's shard.
type pktArena struct {
	free []*packet
	slab []packet // backing block the pool grows from, 256 at a time
}

func (a *pktArena) alloc() *packet {
	var p *packet
	if n := len(a.free); n > 0 {
		p = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	} else {
		if len(a.slab) == 0 {
			a.slab = make([]packet, 256)
		}
		p = &a.slab[0]
		a.slab = a.slab[1:]
	}
	return p
}

func (a *pktArena) release(p *packet) {
	p.flow = nil
	a.free = append(a.free, p)
}

// SeriesPoint is one sample of a flow's recorded time series.
type SeriesPoint struct {
	T             time.Duration // end of the sample window
	ThroughputBps float64       // delivery rate over the window
	SendRateBps   float64       // transmission rate over the window
	AvgRTT        time.Duration // mean RTT of ACKs in the window (0 if none)
	LossRate      float64       // lost/(lost+acked) in the window
	Cwnd          float64       // controller cwnd at sample time
	PacingBps     float64       // controller pacing rate at sample time
}

// FlowStats summarizes a flow over its whole lifetime.
type FlowStats struct {
	Name             string
	Start            time.Duration
	ActiveFor        time.Duration
	SentPackets      int64
	SentBytes        int64
	AckedPackets     int64
	AckedBytes       int64
	LostPackets      int64
	MinRTT           time.Duration
	AvgRTT           time.Duration
	AvgThroughputBps float64
	LossRate         float64
}

// intervalAgg accumulates feedback between control (or recording) ticks.
type intervalAgg struct {
	ackedBytes   int64
	ackedPackets int64
	sentBytes    int64
	sentPackets  int64
	lostPackets  int64
	rttSum       time.Duration
	rttMin       time.Duration
}

func (a *intervalAgg) reset() { *a = intervalAgg{} }

func (a *intervalAgg) addAck(bytes int, rtt time.Duration) {
	a.ackedBytes += int64(bytes)
	a.ackedPackets++
	a.rttSum += rtt
	if a.rttMin == 0 || rtt < a.rttMin {
		a.rttMin = rtt
	}
}

// Shared event dispatchers. Flow and packet events schedule these
// package-level functions with the flow (or packet) as the ScheduleArg
// payload, instead of binding a closure per flow: the flyweight makes a
// Flow carry no per-instance callback state — at a million flows, the six
// closures the struct used to hold were six heap objects and ~100 B each,
// all pointing at identical code. A static func value assigned into a
// func(any) field or interface allocates nothing, and a pointer payload in
// an any allocates nothing either, so the per-event path stays
// allocation-free.
func flowAdvance(a any)      { p := a.(*packet); p.flow.advance(p) }
func flowAck(a any)          { p := a.(*packet); p.flow.onAck(p) }
func flowLossDetected(a any) { p := a.(*packet); p.flow.onLossDetected(p) }
func flowTrySend(a any)      { a.(*Flow).trySend() }
func flowIntervalTick(a any) { a.(*Flow).intervalTick() }
func flowRecordTick(a any)   { a.(*Flow).recordTick() }
func flowStart(a any)        { a.(*Flow).start() }
func flowStop(a any)         { a.(*Flow).stop() }

// Flow is a bulk sender driving one cc.Algorithm. Flows are bulk-allocated
// from the network's slab (see Network.AddFlow) and their fields are
// grouped hot-first: everything the per-packet path (trySend, advance,
// onAck) touches sits at the front of the struct so a million-flow working
// set wastes as little cache as possible on cold configuration state.
type Flow struct {
	// Hot: per-packet path state.
	alg        cc.Algorithm
	eng        *simcore.Engine // this flow's engine (its shard's, when sharded)
	arena      *pktArena       // its shard's packet pool
	inflight   int
	pktSize    int
	nextSendAt time.Duration
	sendTimer  simcore.Timer
	srtt       time.Duration
	minRTT     time.Duration
	rng        simcore.RNG // pacing jitter stream; by value — 8 bytes, no pointer chase
	rec        intervalAgg // feeds the recorded series
	active     bool
	started    bool
	shard      int

	// Warm: per-ACK/loss and tick state.
	tracker   *intervalTracker // send-interval attribution for interval schemes
	returnLeg time.Duration    // ack path delay: Σ link prop + ExtraOneWay
	baseRTT   time.Duration    // 2·(Σ link prop + ExtraOneWay)
	stopAt    time.Duration

	// Cold: configuration, lifetime totals, recorded output.
	net    *Network
	cfg    FlowConfig
	total  intervalAgg
	rttAll time.Duration // Σ RTT for mean over all acks
	series []SeriesPoint
}

// initFlow constructs a flow in place (the storage comes from the network's
// flow slab).
func initFlow(f *Flow, n *Network, cfg FlowConfig, rng simcore.RNG) {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = DefaultPacketSize
	}
	var prop time.Duration
	for _, l := range cfg.Path {
		prop += l.cfg.Delay
	}
	alg := cfg.Alg
	if cfg.CC != nil {
		alg = cfg.CC()
	}
	*f = Flow{
		net:       n,
		cfg:       cfg,
		rng:       rng,
		eng:       n.eng,
		arena:     &n.seqArena,
		alg:       alg,
		pktSize:   cfg.PacketSize,
		returnLeg: prop + cfg.ExtraOneWay,
		baseRTT:   2 * (prop + cfg.ExtraOneWay),
	}
}

// Name returns the flow's configured name.
func (f *Flow) Name() string { return f.cfg.Name }

// Config returns the flow's configuration.
func (f *Flow) Config() FlowConfig { return f.cfg }

// CC exposes the flow's controller (experiments use this to steer Manual
// controllers or inspect scheme internals).
func (f *Flow) CC() cc.Algorithm { return f.alg }

// BaseRTT reports the flow's propagation-only round-trip time.
func (f *Flow) BaseRTT() time.Duration { return f.baseRTT }

// Now reports the virtual time of the flow's own engine. Identical to
// Network.Now in sequential runs; in sharded runs it is the only clock a
// tap callback fired by this flow may read without racing other shards.
func (f *Flow) Now() time.Duration { return f.eng.Now() }

// Series returns the recorded time series.
func (f *Flow) Series() []SeriesPoint { return f.series }

// Shard reports which shard the flow runs on (0 in sequential runs). Tap
// callbacks fired by this flow use it to index per-shard observer state
// without cross-shard races.
func (f *Flow) Shard() int { return f.shard }

// reserveSeries sizes the series backing array to record through the given
// horizon, so recordTick appends never reallocate mid-run. Fresh flows are
// carved out of the network's shared backing block (one allocation per
// ~16k samples instead of one per flow); a flow that already recorded
// samples grows privately.
func (f *Flow) reserveSeries(horizon time.Duration) {
	end := horizon
	if f.cfg.Duration > 0 && f.cfg.Start+f.cfg.Duration < end {
		end = f.cfg.Start + f.cfg.Duration
	}
	if end <= f.cfg.Start {
		return
	}
	need := int((end-f.cfg.Start)/f.net.cfg.RecordInterval) + 2
	if cap(f.series)-len(f.series) >= need {
		return
	}
	if len(f.series) == 0 {
		f.series = f.net.carveSeries(need)
		return
	}
	s := make([]SeriesPoint, len(f.series), len(f.series)+need)
	copy(s, f.series)
	f.series = s
}

// armStart schedules the flow's start (idempotent).
func (f *Flow) armStart() {
	if f.started {
		return
	}
	f.started = true
	f.eng.ScheduleArg(f.cfg.Start, flowStart, f)
}

func (f *Flow) start() {
	now := f.eng.Now()
	f.active = true
	if f.cfg.Duration > 0 {
		f.stopAt = f.cfg.Start + f.cfg.Duration
		f.eng.ScheduleArg(f.stopAt, flowStop, f)
	}
	f.alg.Init(now)
	if ia, ok := f.alg.(cc.IntervalAlgorithm); ok {
		f.tracker = newIntervalTracker(ia)
		f.eng.ScheduleArgAfter(f.tracker.interval, flowIntervalTick, f)
	}
	f.eng.ScheduleArgAfter(f.net.cfg.RecordInterval, flowRecordTick, f)
	f.trySend()
}

func (f *Flow) stop() {
	f.active = false
	f.sendTimer.Cancel()
	f.sendTimer = simcore.Timer{}
}

// intervalTick closes the current send interval and delivers any completed
// ones (the delivery of interval t naturally lags its close by ~1 RTT).
func (f *Flow) intervalTick() {
	if !f.active {
		return
	}
	now := f.eng.Now()
	f.tracker.closeCurrent(f, now)
	f.tracker.tryDeliver(f, now)
	f.eng.ScheduleArgAfter(f.tracker.interval, flowIntervalTick, f)
}

func (f *Flow) recordTick() {
	if !f.active {
		return
	}
	now := f.eng.Now()
	iv := f.net.cfg.RecordInterval
	p := SeriesPoint{
		T:             now,
		ThroughputBps: float64(f.rec.ackedBytes) * 8 / iv.Seconds(),
		SendRateBps:   float64(f.rec.sentBytes) * 8 / iv.Seconds(),
		LossRate:      lossRate(f.rec.lostPackets, f.rec.ackedPackets),
		Cwnd:          f.alg.CWND(),
		PacingBps:     f.alg.PacingRate(),
	}
	if f.rec.ackedPackets > 0 {
		p.AvgRTT = f.rec.rttSum / time.Duration(f.rec.ackedPackets)
	}
	f.series = append(f.series, p)
	if tap := f.net.tap; tap != nil {
		tap.SampleRecorded(f, p)
	}
	f.rec.reset()
	f.eng.ScheduleArgAfter(iv, flowRecordTick, f)
}

func lossRate(lost, acked int64) float64 {
	if lost+acked == 0 {
		return 0
	}
	return float64(lost) / float64(lost+acked)
}

// trySend transmits packets while the window and pacing schedule allow.
func (f *Flow) trySend() {
	if !f.active {
		return
	}
	now := f.eng.Now()
	cwnd := f.alg.CWND()
	if cwnd < 1 {
		cwnd = 1
	}
	for float64(f.inflight) < cwnd {
		rate := f.alg.PacingRate()
		if rate > 0 && f.nextSendAt > now {
			f.armSendTimer(f.nextSendAt)
			return
		}
		f.sendPacket(now)
		if rate > 0 {
			gap := time.Duration(float64(f.pktSize) * 8 / rate * float64(time.Second))
			// Mean-preserving exponential jitter on the pacing gap (Poisson
			// arrivals). Perfectly periodic senders phase-lock against
			// DropTail departures — the waiting-time paradox skews admission
			// toward the faster stream — whereas memoryless arrivals make a
			// full buffer admit packets in proportion to each flow's sending
			// rate, the regime Eq. 2 of the paper (and Jury's occupancy
			// estimator) assumes. Real aggregated traffic is bursty enough
			// to be far closer to this than to CBR.
			gap = time.Duration(float64(gap) * f.rng.ExpFloat64())
			if gap > time.Second {
				gap = time.Second // floor the pacing rate at ~MSS/sec
			}
			base := f.nextSendAt
			if base < now {
				base = now
			}
			f.nextSendAt = base + gap
		}
	}
}

func (f *Flow) armSendTimer(at time.Duration) {
	f.sendTimer.Cancel()
	f.sendTimer = f.eng.ScheduleArg(at, flowTrySend, f)
}

// allocPacket takes a packet from the shard's arena and stamps it for this
// flow.
func (f *Flow) allocPacket(now time.Duration) *packet {
	p := f.arena.alloc()
	p.flow = f
	p.size = f.pktSize
	p.sentAt = now
	p.hop = -1
	p.ctrlIdx = 0
	p.dup = false
	return p
}

// releasePacket recycles a terminated packet (ACKed or loss-detected).
func (f *Flow) releasePacket(p *packet) {
	f.arena.release(p)
}

// lossDetectDelay is the time between a drop and the sender noticing it
// (emulating duplicate-ACK detection): the smoothed RTT, the base RTT before
// any sample, floored at 1ms.
func (f *Flow) lossDetectDelay() time.Duration {
	delay := f.srtt
	if delay == 0 {
		delay = f.baseRTT
	}
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	return delay
}

func (f *Flow) sendPacket(now time.Duration) {
	p := f.allocPacket(now)
	p.lossDelay = f.lossDetectDelay()
	f.inflight++
	if f.tracker != nil {
		p.ctrlIdx = f.tracker.onSend(p.size)
	}
	f.rec.sentBytes += int64(p.size)
	f.rec.sentPackets++
	f.total.sentBytes += int64(p.size)
	f.total.sentPackets++
	if tap := f.net.tap; tap != nil {
		tap.PacketSent(f, p.size)
	}
	if f.cfg.ExtraOneWay > 0 {
		f.eng.ScheduleArgAfter(f.cfg.ExtraOneWay, flowAdvance, p)
	} else {
		f.advance(p)
	}
}

// advance moves a packet to its next hop, or delivers it and schedules the
// ACK's return once it has cleared the last link. It always runs on the
// shard owning the link the packet just arrived at (cross-shard hops are
// routed by Link.finishTx), so the arrive call below never crosses shards.
func (f *Flow) advance(p *packet) {
	p.hop++
	if p.hop < len(f.cfg.Path) {
		f.cfg.Path[p.hop].arrive(p)
		return
	}
	// Delivered. The ACK travels the return leg back to the sender; in a
	// sharded run the sender may live on another shard (the return leg spans
	// the whole path, so it is always ≥ the inter-shard lookahead).
	if last := f.cfg.Path[len(f.cfg.Path)-1]; last.shard != f.shard {
		last.xs.Send(f.shard, last.eng.Now()+f.returnLeg, flowAck, p)
		return
	}
	f.eng.ScheduleArgAfter(f.returnLeg, flowAck, p)
}

func (f *Flow) onAck(p *packet) {
	now := f.eng.Now()
	sentAt := p.sentAt
	size := p.size
	rtt := now - sentAt
	f.inflight--
	if tap := f.net.tap; tap != nil {
		tap.PacketAcked(f, size, rtt)
	}
	if f.tracker != nil {
		f.tracker.onAck(p.ctrlIdx, now, size, rtt)
	}
	// The packet terminates here; recycle it before trySend can reuse it.
	f.releasePacket(p)
	if !f.active {
		return
	}
	if f.minRTT == 0 || rtt < f.minRTT {
		f.minRTT = rtt
	}
	if f.srtt == 0 {
		f.srtt = rtt
	} else {
		f.srtt += (rtt - f.srtt) / 8
	}
	f.rec.addAck(size, rtt)
	f.total.addAck(size, rtt)
	f.rttAll += rtt
	f.alg.OnAck(cc.Ack{Now: now, SentAt: sentAt, RTT: rtt, Bytes: size})
	f.trySend()
	if f.tracker != nil {
		f.tracker.tryDeliver(f, now)
	}
}

// onDrop is called by a link on the flow's own shard when it discards one
// of this flow's packets. The sender learns about the loss one (estimated)
// RTT later, emulating duplicate-ACK detection. Cross-shard drops bypass
// this and use the packet's send-time lossDelay stamp (see Link.dropToSender).
func (f *Flow) onDrop(p *packet) {
	f.eng.ScheduleArgAfter(f.lossDetectDelay(), flowLossDetected, p)
}

func (f *Flow) onLossDetected(p *packet) {
	sentAt := p.sentAt
	size := p.size
	f.inflight--
	if tap := f.net.tap; tap != nil {
		tap.PacketLost(f, size)
	}
	if f.tracker != nil {
		f.tracker.onLoss(p.ctrlIdx)
	}
	// The packet terminates here; recycle it before trySend can reuse it.
	f.releasePacket(p)
	if !f.active {
		return
	}
	now := f.eng.Now()
	f.rec.lostPackets++
	f.total.lostPackets++
	f.alg.OnLoss(cc.Loss{Now: now, SentAt: sentAt, Bytes: size})
	f.trySend()
	if f.tracker != nil {
		f.tracker.tryDeliver(f, now)
	}
}

// Stats summarizes the flow so far.
func (f *Flow) Stats() FlowStats {
	now := f.eng.Now()
	end := now
	if f.stopAt > 0 && f.stopAt < end {
		end = f.stopAt
	}
	active := end - f.cfg.Start
	if active < 0 {
		active = 0
	}
	s := FlowStats{
		Name:         f.cfg.Name,
		Start:        f.cfg.Start,
		ActiveFor:    active,
		SentPackets:  f.total.sentPackets,
		SentBytes:    f.total.sentBytes,
		AckedPackets: f.total.ackedPackets,
		AckedBytes:   f.total.ackedBytes,
		LostPackets:  f.total.lostPackets,
		MinRTT:       f.minRTT,
		LossRate:     lossRate(f.total.lostPackets, f.total.ackedPackets),
	}
	if f.total.ackedPackets > 0 {
		s.AvgRTT = f.rttAll / time.Duration(f.total.ackedPackets)
	}
	if active > 0 {
		s.AvgThroughputBps = float64(f.total.ackedBytes) * 8 / active.Seconds()
	}
	return s
}
