package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPreferenceNormalize(t *testing.T) {
	p := Preference{Throughput: 2, Delay: 1, Loss: 1}.Normalize()
	if math.Abs(p.Throughput-0.5) > 1e-12 || math.Abs(p.Delay-0.25) > 1e-12 {
		t.Fatalf("normalized %+v", p)
	}
	if got := (Preference{}).Normalize(); got != DefaultPreference() {
		t.Fatalf("zero preference normalized to %+v", got)
	}
	if got := (Preference{Throughput: -1, Delay: -2}).Normalize(); got != DefaultPreference() {
		t.Fatalf("negative preference normalized to %+v", got)
	}
}

func TestMORewardReducesToEq9AtUniform(t *testing.T) {
	cfg := DefaultConfig()
	if err := quick.Check(func(rRaw, qRaw, lRaw float64) bool {
		ratio := math.Abs(math.Mod(rRaw, 1))
		queueMS := math.Abs(math.Mod(qRaw, 50))
		loss := math.Abs(math.Mod(lRaw, 0.1))
		rtt := 30*time.Millisecond + time.Duration(queueMS*float64(time.Millisecond))
		a := Reward(cfg, ratio, rtt, 30*time.Millisecond, loss, 0)
		b := MOReward(cfg, DefaultPreference(), ratio, rtt, 30*time.Millisecond, loss, 0)
		return math.Abs(a-b) < 1e-9*(1+math.Abs(a))
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMORewardPreferenceDirections(t *testing.T) {
	cfg := DefaultConfig()
	base := 30 * time.Millisecond
	queued := base + 30*time.Millisecond
	delayPref := Preference{Throughput: 0.2, Delay: 0.7, Loss: 0.1}
	thrPref := Preference{Throughput: 0.7, Delay: 0.2, Loss: 0.1}

	// The delay-heavy preference penalizes the same queue more.
	dPenalty := MOReward(cfg, delayPref, 0.8, base, base, 0, 0) - MOReward(cfg, delayPref, 0.8, queued, base, 0, 0)
	tPenalty := MOReward(cfg, thrPref, 0.8, base, base, 0, 0) - MOReward(cfg, thrPref, 0.8, queued, base, 0, 0)
	if dPenalty <= tPenalty {
		t.Fatalf("delay preference penalty %v not above throughput preference %v", dPenalty, tPenalty)
	}
	// The throughput-heavy preference rewards the same occupancy gain more.
	dGain := MOReward(cfg, delayPref, 0.8, base, base, 0, 0) - MOReward(cfg, delayPref, 0.4, base, base, 0, 0)
	tGain := MOReward(cfg, thrPref, 0.8, base, base, 0, 0) - MOReward(cfg, thrPref, 0.4, base, base, 0, 0)
	if tGain <= dGain {
		t.Fatalf("throughput preference gain %v not above delay preference %v", tGain, dGain)
	}
}

func TestPreferencePolicyKeepsFairnessCalibration(t *testing.T) {
	// μ=δ must hold for every preference: a sole flow at its fair share
	// holds steady under flat signals regardless of the preference.
	for _, pref := range []Preference{
		DefaultPreference(),
		{Throughput: 0.8, Delay: 0.1, Loss: 0.1},
		{Throughput: 0.1, Delay: 0.8, Loss: 0.1},
		{Throughput: 0.1, Delay: 0.1, Loss: 0.8},
	} {
		p := NewPreferencePolicy(pref)
		mu, delta := p.Decide(make([]float64, DefaultConfig().StateDim()))
		if mu != delta {
			t.Fatalf("preference %+v broke μ=δ: %v vs %v", pref, mu, delta)
		}
		if a := PostProcess(mu, delta, 1); math.Abs(a) > 1e-12 {
			t.Fatalf("preference %+v: sole flow acts %v at flat signals", pref, a)
		}
	}
}

func TestPreferencePolicyGainShapes(t *testing.T) {
	delayP := NewPreferencePolicy(Preference{Throughput: 0.1, Delay: 0.8, Loss: 0.1})
	thrP := NewPreferencePolicy(Preference{Throughput: 0.8, Delay: 0.1, Loss: 0.1})
	if delayP.RTTGain <= thrP.RTTGain {
		t.Fatal("delay preference did not raise the RTT gain")
	}
	if delayP.RTTEps >= thrP.RTTEps {
		t.Fatal("delay preference did not tighten the RTT dead band")
	}
	if thrP.ProbeGain <= delayP.ProbeGain {
		t.Fatal("throughput preference did not raise the probe gain")
	}
}

func TestNewWithPreferenceBuildsController(t *testing.T) {
	j := NewWithPreference(DefaultConfig(), Preference{Delay: 1})
	if j.Name() != "jury" {
		t.Fatal("controller broken")
	}
}
