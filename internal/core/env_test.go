package core

import (
	"testing"
	"time"

	"repro/internal/rl"
)

func TestTrainingEnvResetAndStep(t *testing.T) {
	cfg := DefaultEnvConfig(1)
	cfg.Episode = 5 * time.Second
	env := NewTrainingEnv(cfg)
	state := env.Reset()
	if len(state) != cfg.Jury.StateDim() {
		t.Fatalf("state dim %d, want %d", len(state), cfg.Jury.StateDim())
	}
	steps := 0
	done := false
	var reward float64
	for !done && steps < 10000 {
		var next []float64
		next, reward, done = env.Step([]float64{0.5, 0})
		if len(next) != cfg.Jury.StateDim() {
			t.Fatalf("step state dim %d", len(next))
		}
		steps++
	}
	if !done {
		t.Fatal("episode never finished")
	}
	// A 5s episode at 30ms intervals yields at most ~166 decisions (fewer
	// during slow start, which skips the policy).
	if steps < 10 || steps > 200 {
		t.Fatalf("episode had %d decision steps", steps)
	}
	_ = reward
	// Reset starts a fresh episode.
	if s2 := env.Reset(); len(s2) != cfg.Jury.StateDim() {
		t.Fatal("second reset broken")
	}
}

func TestTrainingEnvRewardRespondsToAction(t *testing.T) {
	// Aggressive vs maximally conservative fixed ranges: the conservative
	// agent should end with lower occupancy and (typically) lower reward
	// sums. We only assert both run to completion and produce finite
	// rewards with the aggressive one achieving higher mean occupancy.
	run := func(mu float64) float64 {
		cfg := DefaultEnvConfig(3)
		cfg.Episode = 8 * time.Second
		env := NewTrainingEnv(cfg)
		env.Reset()
		done := false
		for !done {
			_, _, done = env.Step([]float64{mu, -1}) // δ=0: pure μ control
		}
		return env.Jury().Occupancy()
	}
	occAggressive := run(1)
	occConservative := run(-1)
	if occAggressive <= occConservative {
		t.Fatalf("occupancy ordering wrong: aggressive %v vs conservative %v", occAggressive, occConservative)
	}
}

func TestTrainingEnvEpisodesDiffer(t *testing.T) {
	cfg := DefaultEnvConfig(5)
	cfg.Episode = 2 * time.Second
	env := NewTrainingEnv(cfg)
	env.Reset()
	rate1 := env.net.Links()[0].Config().Rate
	env.Reset()
	rate2 := env.net.Links()[0].Config().Rate
	if rate1 == rate2 {
		t.Fatal("consecutive episodes sampled identical bandwidth")
	}
	d := cfg.Domain
	for _, r := range []float64{rate1, rate2} {
		if r < d.MinBandwidth || r > d.MaxBandwidth {
			t.Fatalf("sampled bandwidth %v outside Table 1 domain", r)
		}
	}
}

func TestTrainPolicySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	opts := DefaultTrainOptions(7)
	opts.Epochs = 3
	opts.Actors = 2
	opts.StepsPerActor = 64
	opts.UpdatesPerEpoch = 16
	opts.Env.Episode = 3 * time.Second
	agent, res, err := TrainPolicy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochRewards) != 3 {
		t.Fatalf("epochs recorded: %d", len(res.EpochRewards))
	}
	// The trained actor must produce valid decision ranges.
	policy := &NNPolicy{Net: agent.Actor}
	mu, delta := policy.Decide(make([]float64, opts.Env.Jury.StateDim()))
	if mu < -1 || mu > 1 || delta < 0 || delta > 1 {
		t.Fatalf("trained policy range (%v, %v) out of bounds", mu, delta)
	}
}

var _ rl.Env = (*TrainingEnv)(nil)
