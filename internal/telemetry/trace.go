package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// Sink is a buffered, mutex-guarded JSONL writer: every call appends one
// line atomically, so spans and events from concurrent experiment workers
// interleave at line granularity. A nil Sink discards everything.
type Sink struct {
	mu sync.Mutex
	bw *bufio.Writer
	c  io.Closer
	n  int64 // lines written
}

// NewSink wraps w. If w is also an io.Closer (a file), Close closes it.
func NewSink(w io.Writer) *Sink {
	s := &Sink{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// writeLine appends one JSONL line (the trailing newline is added here).
func (s *Sink) writeLine(b []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bw.Write(b)
	s.bw.WriteByte('\n')
	s.n++
	s.mu.Unlock()
}

// Lines reports how many lines have been written.
func (s *Sink) Lines() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Flush drains the buffer to the underlying writer.
func (s *Sink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Close flushes and closes the underlying writer if it is closable.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// kvKind discriminates the typed field union; a KV carries exactly one of
// the payloads so event emission never boxes values into interfaces.
type kvKind uint8

const (
	kvStr kvKind = iota
	kvI64
	kvF64
)

// KV is one typed key/value field of a structured event.
type KV struct {
	K    string
	kind kvKind
	s    string
	i    int64
	f    float64
}

// Str builds a string field.
func Str(k, v string) KV { return KV{K: k, kind: kvStr, s: v} }

// I64 builds an integer field.
func I64(k string, v int64) KV { return KV{K: k, kind: kvI64, i: v} }

// F64 builds a float field.
func F64(k string, v float64) KV { return KV{K: k, kind: kvF64, f: v} }

// Dur builds an integer field holding nanoseconds.
func Dur(k string, v time.Duration) KV { return KV{K: k, kind: kvI64, i: int64(v)} }

// appendKV appends `,"k":value` to b.
func appendKV(b []byte, kv KV) []byte {
	b = append(b, ',')
	b = strconv.AppendQuote(b, kv.K)
	b = append(b, ':')
	switch kv.kind {
	case kvStr:
		b = strconv.AppendQuote(b, kv.s)
	case kvI64:
		b = strconv.AppendInt(b, kv.i, 10)
	default:
		f := kv.f
		// JSON has no Inf/NaN literals; clamp to null.
		if f != f || f > maxJSONFloat || f < -maxJSONFloat {
			b = append(b, "null"...)
		} else {
			b = strconv.AppendFloat(b, f, 'g', -1, 64)
		}
	}
	return b
}

const maxJSONFloat = 1.797693134862315708145274237317043567981e308

// Tracer emits spans and structured events to a Sink as JSONL. A nil Tracer
// is a no-op. Emission reads the wall clock but never a simulation's RNG or
// event queue: tracing a deterministic run does not perturb it.
type Tracer struct {
	sink *Sink
	pool sync.Pool // *[]byte line scratch
}

// NewTracer returns a tracer writing to sink (nil sink ⇒ no-op tracer).
func NewTracer(sink *Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// scratch hands out a pooled *[]byte (length 0); release must get the same
// pointer back so the pool cycle itself never allocates.
func (t *Tracer) scratch() *[]byte {
	if p, ok := t.pool.Get().(*[]byte); ok {
		*p = (*p)[:0]
		return p
	}
	b := make([]byte, 0, 256)
	return &b
}

func (t *Tracer) release(p *[]byte) {
	t.pool.Put(p)
}

// Span is one in-flight traced operation. The zero value (from a nil
// tracer) is inert: End on it is a no-op.
type Span struct {
	t         *Tracer
	name      string
	wallStart time.Time
	vtStart   time.Duration
}

// Start opens a span. virtual is the simulation's virtual time at the start
// (pass 0 when no virtual clock applies, e.g. training epochs).
func (t *Tracer) Start(name string, virtual time.Duration) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, wallStart: time.Now(), vtStart: virtual}
}

// End closes the span at the given virtual time and emits one JSONL line:
//
//	{"t":"span","name":...,"wall_start_ns":...,"wall_ns":...,"vt_start_ns":...,"vt_ns":...}
//
// wall_ns is the wall-clock duration; vt_ns the virtual-time extent.
func (sp Span) End(virtual time.Duration, kvs ...KV) {
	t := sp.t
	if t == nil {
		return
	}
	p := t.scratch()
	b := *p
	b = append(b, `{"t":"span","name":`...)
	b = strconv.AppendQuote(b, sp.name)
	b = append(b, `,"wall_start_ns":`...)
	b = strconv.AppendInt(b, sp.wallStart.UnixNano(), 10)
	b = append(b, `,"wall_ns":`...)
	b = strconv.AppendInt(b, int64(time.Since(sp.wallStart)), 10)
	b = append(b, `,"vt_start_ns":`...)
	b = strconv.AppendInt(b, int64(sp.vtStart), 10)
	b = append(b, `,"vt_ns":`...)
	b = strconv.AppendInt(b, int64(virtual-sp.vtStart), 10)
	for _, kv := range kvs {
		b = appendKV(b, kv)
	}
	b = append(b, '}')
	t.sink.writeLine(b)
	*p = b
	t.release(p)
}

// Event emits one structured log line:
//
//	{"t":"event","domain":...,"name":...,"wall_ns":...,"vt_ns":...,<fields>}
//
// domain is "sim", "train", or "exp"; virtual is the virtual time of the
// event (0 where none applies). Fields land at the top level so line-
// oriented tools (jq, juryplot -trace) can filter without nesting.
func (t *Tracer) Event(domain, name string, virtual time.Duration, kvs ...KV) {
	if t == nil {
		return
	}
	p := t.scratch()
	b := *p
	b = append(b, `{"t":"event","domain":`...)
	b = strconv.AppendQuote(b, domain)
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"wall_ns":`...)
	b = strconv.AppendInt(b, time.Now().UnixNano(), 10)
	b = append(b, `,"vt_ns":`...)
	b = strconv.AppendInt(b, int64(virtual), 10)
	for _, kv := range kvs {
		b = appendKV(b, kv)
	}
	b = append(b, '}')
	t.sink.writeLine(b)
	*p = b
	t.release(p)
}
