package core

import (
	"time"

	"repro/internal/cc"
)

// Signals is the output of one application of the signal transformation
// block (§3.1) for one control interval.
type Signals struct {
	// DRTTNorm is (RTT_t − RTT_{t−1}) / Δt. By Eq. 1 this equals
	// (Σᵢxᵢ − c)/c, the overload fraction of the bottleneck — dimensionless
	// and identical for every flow sharing the bottleneck.
	DRTTNorm float64
	// LossRatio is (1−L_t)/(1−L_{t−1}) − 1, centred at 0 (0 when the loss
	// rate is unchanged, negative when loss worsens).
	LossRatio float64
	// RateChange is a_{t−1} = x_t/x_{t−1}, the multiplicative sending-rate
	// change the flow enforced.
	RateChange float64
	// ThrChange is thr_t/thr_{t−1}, the corresponding throughput response.
	ThrChange float64
	// Valid is false while the transformer has no previous interval yet or
	// the interval carried no feedback.
	Valid bool
}

// Transformer turns per-interval raw statistics into Jury's normalized
// signals and maintains the stacked history fed to the policy.
type Transformer struct {
	cfg Config

	prevThr      float64
	prevRTT      time.Duration
	prevLoss     float64
	prevSent     int64
	prevEnforced float64
	prevValid    bool

	history      []float64 // ring of 2*HistoryLen entries, oldest first
	historyReady int
}

// NewTransformer returns a transformer for the given config.
func NewTransformer(cfg Config) *Transformer {
	return &Transformer{cfg: cfg, history: make([]float64, cfg.StateDim())}
}

// Update folds in one interval's send-attributed statistics (the emulator
// delivers stats for the packets *sent* during each interval, per Fig. 3)
// and returns the transformed signals. The realized rate change
// SentBytes_t/SentBytes_{t−1} is the enforced x_t/x_{t−1}, and the
// throughput response AckedBytes_t/AckedBytes_{t−1} is its paired feedback.
func (t *Transformer) Update(s cc.IntervalStats) Signals {
	var sig Signals
	// Delivery rate, not acked-volume-per-interval: an interval's extra
	// packets are absorbed by the queue and still delivered, so only the
	// delivery *spacing* reveals whether the bottleneck had headroom.
	thr := s.DeliveryRate()
	loss := s.LossRate()

	if t.prevValid && s.AckedPackets > 0 && t.prevThr > 0 && s.AvgRTT > 0 && t.prevRTT > 0 {
		sig.Valid = true
		sig.DRTTNorm = (s.AvgRTT - t.prevRTT).Seconds() / s.Interval.Seconds()
		sig.LossRatio = (1-loss)/(1-clampLoss(t.prevLoss)) - 1
		sig.ThrChange = thr / t.prevThr
		// The realized sending-rate change. Using the measured bytes (not
		// the enforced pacing value) keeps the rate and throughput signals
		// on the same footing, so that when the bottleneck is underutilized
		// the two track each other *exactly* (every sent packet is acked)
		// and the occupancy estimate is exactly zero.
		if t.prevSent > 0 {
			sig.RateChange = float64(s.SentBytes) / float64(t.prevSent)
		} else {
			sig.RateChange = 1
		}
	}

	if s.AckedPackets > 0 && s.AvgRTT > 0 {
		t.prevThr = thr
		t.prevRTT = s.AvgRTT
		t.prevLoss = loss
		t.prevSent = s.SentBytes
		t.prevEnforced = s.EnforcedRateBps
		t.prevValid = true
	}

	if sig.Valid {
		t.push(sig)
	}
	return sig
}

func clampLoss(l float64) float64 {
	if l >= 0.999 {
		return 0.999
	}
	return l
}

// push appends the policy-facing pair (ΔRTT, loss ratio) to the history.
func (t *Transformer) push(sig Signals) {
	c := t.cfg.SignalClamp
	copy(t.history, t.history[2:])
	n := len(t.history)
	t.history[n-2] = cc.Clamp(sig.DRTTNorm, -c, c)
	t.history[n-1] = cc.Clamp(sig.LossRatio, -c, c)
	if t.historyReady < t.cfg.HistoryLen {
		t.historyReady++
	}
}

// State returns the stacked policy input (a copy), oldest interval first.
func (t *Transformer) State() []float64 {
	return t.StateInto(nil)
}

// StateInto copies the stacked policy input into dst (grown if too small)
// and returns it. Hot paths call it with a reused buffer so one decision per
// control interval does not cost one allocation per control interval.
func (t *Transformer) StateInto(dst []float64) []float64 {
	if cap(dst) < len(t.history) {
		dst = make([]float64, len(t.history))
	}
	dst = dst[:len(t.history)]
	copy(dst, t.history)
	return dst
}

// Ready reports whether the history holds at least one full interval pair.
func (t *Transformer) Ready() bool { return t.historyReady > 0 }
