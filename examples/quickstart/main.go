// Quickstart: run a single Jury flow over an emulated 100 Mbps / 30 ms
// bottleneck and watch the controller's internals — the bandwidth-agnostic
// signals, the decision range (μ, δ), the occupancy estimate, and the
// resulting rate — settle at full utilization with a shallow queue.
package main

import (
	"fmt"
	"time"

	jury "repro"
)

func main() {
	net := jury.NewNetwork(jury.NetworkConfig{Seed: 1})
	link := net.AddLink(jury.LinkConfig{
		Rate:        100e6,                 // 100 Mbit/s
		Delay:       15 * time.Millisecond, // 30 ms RTT
		BufferBytes: 750_000,               // 2 BDP
	})

	var ctrl *jury.Controller
	flow := net.AddFlow(jury.FlowConfig{
		Name: "quickstart",
		Path: []*jury.Link{link},
		CC: func() jury.CC {
			ctrl = jury.NewController(1)
			return ctrl
		},
	})

	fmt.Println("t(s)  thr(Mbps)  rtt(ms)  occupancy     mu   delta  action")
	for s := 2; s <= 30; s += 2 {
		net.Run(time.Duration(s) * time.Second)
		st := flow.Stats()
		mu, delta := ctrl.LastRange()
		fmt.Printf("%4d  %9.1f  %7.1f  %9.2f  %5.2f  %5.2f  %6.2f\n",
			s, st.AvgThroughputBps/1e6, float64(st.AvgRTT)/1e6,
			ctrl.Occupancy(), mu, delta, ctrl.LastAction())
	}

	st := flow.Stats()
	fmt.Printf("\nfinal: %.1f Mbps (%.1f%% of capacity), min RTT %v, loss %.3f%%\n",
		st.AvgThroughputBps/1e6, st.AvgThroughputBps/1e6, st.MinRTT, st.LossRate*100)
	fmt.Printf("queuing delay at steady state: %.1f ms (base RTT 30 ms)\n",
		float64(st.AvgRTT-flow.BaseRTT())/1e6)
}
