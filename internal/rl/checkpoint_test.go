package rl

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simcore"
)

func tinyAgent(seed uint64) *TD3 {
	return NewTD3(Config{StateDim: 1, ActionDim: 1, Hidden: []int{16, 16}, Seed: seed})
}

func tinyTrainConfig(agent *TD3, epochs int, path string) TrainConfig {
	return TrainConfig{
		Agent:           agent,
		EnvFactory:      func(i int) Env { return &banditEnv{rng: simcore.NewRNG(uint64(i) + 10)} },
		Actors:          2,
		Epochs:          epochs,
		StepsPerActor:   64,
		UpdatesPerEpoch: 8,
		BufferSize:      1 << 12,
		WarmupEpochs:    1,
		Seed:            7,
		CheckpointPath:  path,
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "agent.ckpt")
	src := tinyAgent(3)
	ck := src.snapshot()
	ck.Epoch = 5
	ck.Noise = 0.123
	ck.EpochRewards = []float64{-1, -0.5}
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch != 5 || loaded.Noise != 0.123 || len(loaded.EpochRewards) != 2 {
		t.Fatalf("loop state lost: %+v", loaded)
	}
	dst := tinyAgent(99) // different seed: different initial weights
	if err := dst.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	state := []float64{0.7}
	want := src.Actor.Forward(state)[0]
	got := dst.Actor.Forward(state)[0]
	if want != got {
		t.Fatalf("restored actor output %v, want %v", got, want)
	}
	// No temp files may linger next to the checkpoint.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stale checkpoint temp file %q", e.Name())
		}
	}
}

func TestRestoreRejectsShapeMismatch(t *testing.T) {
	big := NewTD3(Config{StateDim: 2, ActionDim: 1, Hidden: []int{8}, Seed: 1})
	if err := tinyAgent(1).Restore(big.snapshot()); err == nil {
		t.Fatal("shape-mismatched checkpoint restored silently")
	}
	if err := tinyAgent(1).Restore(&Checkpoint{}); err == nil {
		t.Fatal("empty checkpoint restored silently")
	}
}

func TestLoadCheckpointRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "agent.ckpt")
	if err := os.WriteFile(path, []byte("{\"epoch\": 3, \"actor\": tru"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("truncated checkpoint loaded silently")
	}
	// A corrupt checkpoint must fail a Resume run loudly, not silently
	// restart training from scratch.
	cfg := tinyTrainConfig(tinyAgent(1), 2, path)
	cfg.Resume = true
	if _, err := Train(cfg); err == nil {
		t.Fatal("Train resumed from a corrupt checkpoint")
	}
}

// TestTrainKillAndResume is the satellite's acceptance test: a run killed
// after N epochs resumes from the last atomic checkpoint, executes only the
// remaining epochs, and ends with finite weights.
func TestTrainKillAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.ckpt")
	const total = 6
	const killAt = 3

	// "Kill" the first run by only asking for killAt epochs; the checkpoint
	// on disk is then exactly what a SIGKILL after epoch killAt would leave.
	first := tinyTrainConfig(tinyAgent(5), killAt, path)
	if _, err := Train(first); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != killAt {
		t.Fatalf("checkpoint epoch %d, want %d", ck.Epoch, killAt)
	}

	// Fresh process: new agent with the same architecture, Resume on.
	var ran []int
	second := tinyTrainConfig(tinyAgent(5), total, path)
	second.Resume = true
	second.Progress = func(epoch int, _, _ float64) { ran = append(ran, epoch) }
	res, err := Train(second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != total-killAt || ran[0] != killAt {
		t.Fatalf("resumed run executed epochs %v, want exactly %d..%d", ran, killAt, total-1)
	}
	if len(res.EpochRewards) != total {
		t.Fatalf("resumed result has %d epoch rewards, want %d (checkpointed + fresh)", len(res.EpochRewards), total)
	}
	if !second.Agent.Actor.AllFinite() {
		t.Fatal("non-finite weights after resume")
	}
	final, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch != total {
		t.Fatalf("final checkpoint epoch %d, want %d", final.Epoch, total)
	}
	for _, r := range final.EpochRewards {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("non-finite epoch reward in checkpoint: %v", final.EpochRewards)
		}
	}
}

// nanRewardEnv wraps banditEnv but poisons a fraction of rewards with NaN,
// emulating a diverged reward signal (e.g. a 0/0 in throughput/delay).
type nanRewardEnv struct {
	banditEnv
	n int
}

func (e *nanRewardEnv) Step(a []float64) ([]float64, float64, bool) {
	s, r, d := e.banditEnv.Step(a)
	e.n++
	if e.n%7 == 0 {
		r = math.NaN()
	}
	return s, r, d
}

// TestTrainSurvivesNaNRewards: poisoned batches must be skipped (counted),
// never applied — the weights stay finite throughout.
func TestTrainSurvivesNaNRewards(t *testing.T) {
	agent := tinyAgent(11)
	cfg := tinyTrainConfig(agent, 4, "")
	cfg.EnvFactory = func(i int) Env {
		return &nanRewardEnv{banditEnv: banditEnv{rng: simcore.NewRNG(uint64(i) + 20)}}
	}
	if _, err := Train(cfg); err != nil {
		t.Fatal(err)
	}
	if agent.SkippedUpdates() == 0 {
		t.Fatal("NaN rewards never tripped the gradient guard")
	}
	if !agent.Actor.AllFinite() {
		t.Fatal("actor weights went non-finite despite the guard")
	}
	for _, m := range []struct {
		name string
		ok   bool
	}{
		{"critic1", agent.critic1.AllFinite()},
		{"critic2", agent.critic2.AllFinite()},
		{"actor target", agent.actorTarget.AllFinite()},
		{"c1 target", agent.c1Target.AllFinite()},
		{"c2 target", agent.c2Target.AllFinite()},
	} {
		if !m.ok {
			t.Fatalf("%s went non-finite despite the guard", m.name)
		}
	}
}
