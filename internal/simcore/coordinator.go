package simcore

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements conservative space-parallel discrete-event execution
// (classic null-message / time-window DES): a Coordinator advances a set of
// Engines — one per topology shard, each on its own goroutine — in lock-step
// half-open windows [W, W+L), where the window L is the minimum inter-shard
// lookahead (for the network emulator: the smallest propagation delay of any
// link whose far end lives in another shard). Any event one shard emits for
// another therefore fires at least one full window in the future, so shards
// never need to see each other's state mid-window; cross-shard events are
// exchanged only at window barriers.
//
// Synchronization is decentralized: there is no coordinator goroutine
// handing out windows over channels. Every shard worker runs the same
// deterministic control loop — compute the next window from state every
// shard published before the last barrier, execute it, publish, synchronize
// on a sense-reversing barrier — so each window costs one barrier episode
// when nothing crossed shards (the common case for loosely coupled
// topologies) and two when an exchange phase is needed. Published state
// (per-shard next-event times and exchange-needed flags) is double-buffered
// by barrier parity: a round writes buffer p while everyone still reading
// buffer 1-p finishes, and the barrier between rounds makes the flip safe,
// so one barrier per round suffices without read/write races.
//
// Determinism: within a shard, execution is the ordinary sequential engine.
// Every worker computes the window sequence from identical published
// snapshots, so all workers agree on every window boundary and on whether
// an exchange phase runs — control flow never depends on goroutine timing.
// Everything that crosses a barrier is ordered by a total key before it
// touches a destination engine — injected events by (at, schedule time,
// source shard, per-source emission order), and the observed event stream
// by (at, shard) — so a sharded run is bit-reproducible regardless of
// goroutine scheduling, and its merged event stream folds to the same
// digest as the sequential run of the same scenario (the stream digest
// folds firing times in nondecreasing order, which both executions share;
// see internal/simcheck).

// xev is one cross-shard event waiting at a barrier.
type xev struct {
	at      time.Duration
	schedAt time.Duration // emission virtual time, preserved across the barrier
	src     int32         // emitting shard — tie-break after (at, schedAt)
	ord     uint32        // per-source emission order — final tie-break
	fn      func(any)
	arg     any
}

// evRec is one executed event buffered for merged hook delivery.
type evRec struct {
	at  time.Duration
	seq uint64
}

// xevSorter orders barrier injections by (at, schedAt, src, ord) — the same
// (at, schedAt) key the destination heap sorts by, then a deterministic
// source tie-break so insertion order (which decides residual ties) never
// depends on goroutine scheduling. It is a named pointer receiver so
// sort.Sort gets an already-boxed interface value and the per-window sort
// allocates nothing.
type xevSorter struct{ v []xev }

func (s *xevSorter) Len() int      { return len(s.v) }
func (s *xevSorter) Swap(i, j int) { s.v[i], s.v[j] = s.v[j], s.v[i] }
func (s *xevSorter) Less(i, j int) bool {
	a, b := &s.v[i], &s.v[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.ord < b.ord
}

// Shard is one partition's handle: its private engine plus the outgoing
// cross-shard buffers. Exactly one goroutine (the shard's worker, inside
// Coordinator.Run) touches a Shard's engine during a window; during the
// exchange phase each destination worker drains the out-buffers addressed
// to it, which the barriers order against the emitters' writes. All buffers
// are reused window to window, so steady-state cross-shard traffic
// allocates nothing.
type Shard struct {
	id  int
	eng *Engine
	out [][]xev // per destination shard
	win []evRec // events executed this window, for merged hook delivery
	ord uint32  // emission counter for deterministic tie-breaks

	inbox    xevSorter // injection scratch for the exchange phase, reused
	executed int64
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private engine.
func (s *Shard) Engine() *Engine { return s.eng }

// Send queues fn(arg) to fire at absolute virtual time at on shard dst. The
// event is injected into dst's engine at the next window barrier; at must be
// no earlier than the end of the current window (emission time plus the
// inter-shard lookahead guarantees this), which the coordinator verifies at
// the barrier. Call only from the emitting shard's own events.
func (s *Shard) Send(dst int, at time.Duration, fn func(any), arg any) {
	s.out[dst] = append(s.out[dst], xev{
		at: at, schedAt: s.eng.Now(),
		src: int32(s.id), ord: s.ord,
		fn: fn, arg: arg,
	})
	s.ord++
}

// barrier is a reusable sense-reversing barrier. Arrivals count up on an
// atomic; the last arriver resets the count and flips the global sense,
// releasing everyone spinning on it. Waiters spin briefly (yielding the
// processor each iteration, which matters on machines with fewer cores than
// shards) and then fall back to a condition variable, so an uneven window
// does not burn a core per waiting shard.
type barrier struct {
	n       int32
	arrived atomic.Int32
	sense   atomic.Uint32
	mu      sync.Mutex
	cond    *sync.Cond
}

const barrierSpin = 64

func (b *barrier) init(n int) {
	b.n = int32(n)
	b.cond = sync.NewCond(&b.mu)
}

// await blocks until all n participants arrive. local is the caller's
// private sense, flipped every episode; start it at 0.
func (b *barrier) await(local *uint32) {
	s := *local ^ 1
	*local = s
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		b.mu.Lock()
		b.sense.Store(s)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for i := 0; i < barrierSpin; i++ {
		if b.sense.Load() == s {
			return
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	for b.sense.Load() != s {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// paddedInt64 and paddedUint32 keep per-shard published slots on separate
// cache lines so barrier-adjacent publishes do not false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

type paddedUint32 struct {
	v atomic.Uint32
	_ [60]byte
}

// noEvent is the published next-event time of an empty engine.
const noEvent = int64(math.MaxInt64)

// Coordinator advances a fixed set of shards in conservative lock-step
// windows. Construct with NewCoordinator; Run may be called once.
type Coordinator struct {
	shards []*Shard
	window time.Duration

	// merged is the event hook stolen from the primary engine (shard 0) at
	// construction: the coordinator feeds it the k-way time-ordered merge of
	// every shard's window stream, so observers attached to the primary
	// engine (the simcheck checker, telemetry) see one globally ordered
	// event stream exactly as they would in a sequential run.
	merged func(at time.Duration, seq uint64)

	bar    barrier
	nextAt [2][]paddedInt64  // published next-event times, by barrier parity
	flags  [2][]paddedUint32 // published exchange-needed flags, by parity
	fault  atomic.Pointer[string]

	cursor []int // k-way merge cursors, reused
	rounds int64 // barrier episodes (written by shard 0's worker only)
	fused  int64 // windows that skipped the exchange phase (ditto)
	ran    bool

	// Window hook (SetWindowHook): hookDue is consulted by shard 0 after
	// each executed window; when it reports true the window is forced onto
	// the exchange path and hookFire runs on shard 0's worker between the
	// two exchange barriers — every other worker is parked, so the hook may
	// read state written by any shard during the window without racing.
	hookDue  func(end time.Duration) bool
	hookFire func(end time.Duration)
}

// NewCoordinator wraps engines (one per shard) for windowed execution.
// window is the global lookahead: every cross-shard Send must land at least
// one window after its emission. window <= 0 means the shards provably never
// exchange events, and each runs straight to the horizon in one window. Any
// event hook installed on engines[0] is taken over and fed the merged
// stream; hooks on other engines are rejected, since their events would
// bypass the merge.
func NewCoordinator(engines []*Engine, window time.Duration) *Coordinator {
	if len(engines) == 0 {
		panic("simcore: NewCoordinator with no engines")
	}
	c := &Coordinator{
		window: window,
		merged: engines[0].EventHook(),
		cursor: make([]int, len(engines)),
	}
	c.bar.init(len(engines))
	for p := 0; p < 2; p++ {
		c.nextAt[p] = make([]paddedInt64, len(engines))
		c.flags[p] = make([]paddedUint32, len(engines))
	}
	for i, eng := range engines {
		if i > 0 && eng.EventHook() != nil {
			panic("simcore: NewCoordinator: event hook on a non-primary engine")
		}
		s := &Shard{
			id:  i,
			eng: eng,
			out: make([][]xev, len(engines)),
		}
		if c.merged != nil {
			s := s
			eng.SetEventHook(func(at time.Duration, seq uint64) {
				s.win = append(s.win, evRec{at: at, seq: seq})
			})
		}
		c.shards = append(c.shards, s)
	}
	return c
}

// Shard returns shard i's handle (for wiring emitters before Run).
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// SetWindowHook installs a barrier-synchronized observer of window
// boundaries. After every executed window [w, end), shard 0 evaluates
// due(end); when it returns true the window takes the exchange path (two
// barriers) and fire(end) runs on shard 0's worker while every other worker
// waits at the second barrier — at that point all events before end have
// executed on every shard, and no shard is mutating its state, so fire may
// merge per-shard accumulators written during the window. Both callbacks
// must depend only on end and the hook's own state (never on goroutine
// timing), keeping the window sequence deterministic; neither may schedule
// events or touch any engine, so an observed run stays digest-identical to
// a bare one. Call before Run.
func (c *Coordinator) SetWindowHook(due func(end time.Duration) bool, fire func(end time.Duration)) {
	if c.ran {
		panic("simcore: SetWindowHook after Run")
	}
	c.hookDue, c.hookFire = due, fire
}

// ExecutedPerShard returns how many events each shard executed. Valid after
// Run returns.
func (c *Coordinator) ExecutedPerShard() []int64 {
	out := make([]int64, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.executed
	}
	return out
}

// BarrierRounds reports how many barrier episodes Run used: one per fused
// window, two per window with an exchange phase. Valid after Run returns.
func (c *Coordinator) BarrierRounds() int64 { return c.rounds }

// FusedWindows reports how many windows skipped the exchange phase — no
// shard had emitted cross-shard events or buffered hook records, so the
// second barrier and the injection pass were elided. Valid after Run
// returns.
func (c *Coordinator) FusedWindows() int64 { return c.fused }

// Run executes all shards to the horizon (events at exactly the horizon
// fire, matching Engine.Run) and returns the total number of events
// executed. Afterwards every engine's clock sits at exactly the horizon and
// the primary engine's original event hook is restored. A lookahead
// violation detected by any worker is re-raised as a panic on the caller's
// goroutine.
func (c *Coordinator) Run(horizon time.Duration) int64 {
	if c.ran {
		panic("simcore: Coordinator.Run re-entered")
	}
	c.ran = true

	stop := horizon + 1 // exclusive bound: events at exactly horizon fire
	if stop < horizon {
		stop = horizon // Duration overflow guard; unreachable in practice
	}
	window := c.window
	if window <= 0 {
		// No cross-shard edges exist: one window to the end, fully parallel.
		window = stop
	}

	// Workers read buffer (phase-1)&1 at the top of their first round; seed
	// it here, before the goroutines start, so round one sees every shard.
	for i, s := range c.shards {
		c.nextAt[1][i].v.Store(nextAtOf(s.eng))
	}

	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			c.worker(s, stop, window)
		}(s)
	}
	wg.Wait()

	for _, s := range c.shards {
		if s.eng.Now() < horizon {
			s.eng.AdvanceTo(horizon)
		}
	}
	if c.merged != nil {
		c.shards[0].eng.SetEventHook(c.merged)
	}
	if f := c.fault.Load(); f != nil {
		panic(*f)
	}
	var total int64
	for _, s := range c.shards {
		total += s.executed
	}
	return total
}

// worker is one shard's control loop. Every worker runs the identical
// deterministic sequence of windows: all inputs to control-flow decisions
// (the global minimum next-event time, the exchange-needed flags, the
// fault slot) are read from snapshots that a barrier separates from their
// writes, so the workers never disagree on a window boundary, on whether
// an exchange phase runs, or on when to stop — the loop needs no central
// dispatcher.
func (c *Coordinator) worker(s *Shard, stop, window time.Duration) {
	var sense uint32
	phase := 0 // barrier episodes completed; selects the publish buffer
	w := time.Duration(0)
	for {
		// Global minimum next-event time, from the snapshot every shard
		// published before the last barrier. Identical on every worker.
		read := c.nextAt[(phase-1)&1]
		m := noEvent
		for i := range read {
			if v := read[i].v.Load(); v < m {
				m = v
			}
		}
		if m >= int64(stop) {
			return // drained (noEvent) or nothing before the horizon
		}
		// Skip idle stretches: no shard has an event before m, and with no
		// events there can be no cross-shard sends, so jumping the window
		// start to m is free and keeps sparse phases (startup, drained
		// endgames) from costing one barrier per empty window.
		if t := time.Duration(m); t > w {
			w = t
		}
		end := w + window
		if end > stop || end < w {
			end = stop
		}

		s.executed += int64(s.eng.RunUntil(end))

		// Publish into the parity buffer readers flip to after the next
		// barrier; the buffer written two episodes ago is only re-read
		// before that barrier, so a single barrier orders the flip.
		write := phase & 1
		c.nextAt[write][s.id].v.Store(nextAtOf(s.eng))
		flag := uint32(0)
		for _, buf := range s.out {
			if len(buf) > 0 {
				flag = 1
				break
			}
		}
		if c.merged != nil && len(s.win) > 0 {
			flag = 1
		}
		// The window hook needs the parked-workers guarantee of the exchange
		// phase, so a due window publishes the exchange flag even when
		// nothing crossed shards. Only shard 0 consults the hook; the flag
		// propagates the decision to every worker.
		fireHook := false
		if s.id == 0 && c.hookDue != nil && c.hookDue(end) {
			fireHook = true
			flag = 1
		}
		c.flags[write][s.id].v.Store(flag)

		c.bar.await(&sense)
		phase++
		if s.id == 0 {
			c.rounds++
		}

		needExchange := false
		for i := range c.flags[write] {
			if c.flags[write][i].v.Load() != 0 {
				needExchange = true
				break
			}
		}
		if needExchange {
			// Exchange phase: each destination drains the buffers addressed
			// to it and injects into its own engine, then re-publishes its
			// next-event time (injections may be earlier than local work).
			c.inject(s, end)
			c.nextAt[phase&1][s.id].v.Store(nextAtOf(s.eng))
			if s.id == 0 {
				c.deliverMerged()
				if fireHook {
					c.hookFire(end)
				}
			}
			c.bar.await(&sense)
			phase++
			if s.id == 0 {
				c.rounds++
			}
			if c.fault.Load() != nil {
				return
			}
		} else if s.id == 0 {
			// Fused window: nothing crossed shards and no hook records are
			// buffered, so the exchange phase — and its barrier — is elided.
			c.fused++
		}
		w = end
	}
}

// nextAtOf is an engine's next-event time as a publishable int64.
func nextAtOf(e *Engine) int64 {
	if at, ok := e.NextAt(); ok {
		return int64(at)
	}
	return noEvent
}

// deliverMerged feeds the window's executed events to the stolen primary
// hook in global (at, shard) order. Each shard's buffer is already
// nondecreasing in at, so a k-way merge suffices; ties across shards are
// broken by shard id, which keeps delivery deterministic (equal-time events
// fold identically into the stream digest in any order). Runs on shard 0's
// worker during the exchange phase, after the first barrier ordered it
// against every shard's buffer writes.
func (c *Coordinator) deliverMerged() {
	if c.merged == nil {
		return
	}
	for i := range c.cursor {
		c.cursor[i] = 0
	}
	for {
		best := -1
		var bestAt time.Duration
		for i, s := range c.shards {
			if j := c.cursor[i]; j < len(s.win) {
				if best < 0 || s.win[j].at < bestAt {
					best, bestAt = i, s.win[j].at
				}
			}
		}
		if best < 0 {
			break
		}
		rec := c.shards[best].win[c.cursor[best]]
		c.cursor[best]++
		c.merged(rec.at, rec.seq)
	}
	for _, s := range c.shards {
		s.win = s.win[:0]
	}
}

// inject drains every source's buffer addressed to shard s and injects the
// events into s's engine in (at, schedAt, src, ord) order. end is the
// window boundary just executed: every injection must fire at or after it,
// or the emitting shard under-estimated its lookahead — a programming error
// worth dying loudly for, because the destination may already have executed
// past the event's time. Workers cannot panic across goroutines, so the
// violation is parked in the fault slot; every worker checks it after the
// exchange barrier and Run re-raises it on the caller.
func (c *Coordinator) inject(s *Shard, end time.Duration) {
	s.inbox.v = s.inbox.v[:0]
	for _, src := range c.shards {
		buf := src.out[s.id]
		if len(buf) == 0 {
			continue
		}
		s.inbox.v = append(s.inbox.v, buf...)
		for i := range buf {
			buf[i].fn, buf[i].arg = nil, nil
		}
		src.out[s.id] = buf[:0]
	}
	if len(s.inbox.v) == 0 {
		return
	}
	sort.Sort(&s.inbox)
	for i := range s.inbox.v {
		ev := &s.inbox.v[i]
		if ev.at < end {
			msg := fmt.Sprintf("simcore: cross-shard event at %v delivered after window end %v (lookahead violated)", ev.at, end)
			c.fault.CompareAndSwap(nil, &msg)
			return
		}
		s.eng.InjectArg(ev.at, ev.schedAt, ev.fn, ev.arg)
		ev.fn, ev.arg = nil, nil
	}
}
