package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
)

// constPolicy returns a fixed decision range (possibly non-finite) so tests
// can poison the decision boundary deliberately.
type constPolicy struct{ mu, delta float64 }

func (p constPolicy) Decide([]float64) (float64, float64) { return p.mu, p.delta }

// feedIntervals drives the controller through n model-path intervals:
// enough acked packets to clear the statistics-significance rule, no
// losses, and a plausible RTT.
func feedIntervals(j *Jury, n int) {
	base := 20 * time.Millisecond
	for i := 0; i < n; i++ {
		now := time.Duration(i+1) * j.cfg.Interval
		j.OnInterval(cc.IntervalStats{
			Now:          now,
			Interval:     j.cfg.Interval,
			AckedBytes:   50 * 1500,
			AckedPackets: 50,
			SentBytes:    50 * 1500,
			SentPackets:  50,
			AvgRTT:       base + time.Duration(i%3)*time.Millisecond,
			MinRTT:       base,
			FlowMinRTT:   base,
		})
	}
}

func guardedJury(p Policy) *Jury {
	cfg := DefaultConfig()
	cfg.ExploreProb = 0 // deterministic action path
	return New(cfg, p)
}

func TestGuardDegradesOnNaNPolicyOutput(t *testing.T) {
	j := guardedJury(constPolicy{mu: math.NaN(), delta: 0.5})
	feedIntervals(j, 40)
	if j.DegradedDecisions() == 0 {
		t.Fatal("NaN policy output never triggered the degradation guard")
	}
	if j.NonFiniteActions() != 0 {
		t.Fatalf("%d non-finite actions slipped past the decision guard", j.NonFiniteActions())
	}
	if !isFinite(j.CWND()) || j.CWND() < j.cfg.MinCwnd {
		t.Fatalf("cwnd %v corrupted", j.CWND())
	}
	if !isFinite(j.PacingRate()) {
		t.Fatalf("pacing %v corrupted", j.PacingRate())
	}
}

func TestGuardDegradesOnInfDelta(t *testing.T) {
	j := guardedJury(constPolicy{mu: 0.1, delta: math.Inf(1)})
	feedIntervals(j, 40)
	if j.DegradedDecisions() == 0 {
		t.Fatal("Inf delta never triggered the degradation guard")
	}
	if j.NonFiniteActions() != 0 || !isFinite(j.CWND()) {
		t.Fatalf("guard leaked: nonfinite=%d cwnd=%v", j.NonFiniteActions(), j.CWND())
	}
}

// TestGuardClampsOutOfRangePolicy verifies out-of-range but finite output is
// clamped, not degraded: the decision range contract is μ∈[−1,1], δ∈[0,1].
func TestGuardClampsOutOfRangePolicy(t *testing.T) {
	j := guardedJury(constPolicy{mu: 5, delta: -3})
	feedIntervals(j, 40)
	if j.DegradedDecisions() != 0 {
		t.Fatalf("finite out-of-range output degraded (%d) instead of clamped", j.DegradedDecisions())
	}
	mu, delta := j.LastRange()
	if mu != 1 || delta != 0 {
		t.Fatalf("LastRange = (%v, %v), want clamped (1, 0)", mu, delta)
	}
	if a := j.LastAction(); a < -1 || a > 1 {
		t.Fatalf("action %v outside [-1, 1]", a)
	}
}

// TestGuardFallbackIsAIMD checks the degraded action's direction: retreat
// under loss, probe without.
func TestGuardFallbackIsAIMD(t *testing.T) {
	j := guardedJury(constPolicy{mu: math.NaN(), delta: math.NaN()})
	feedIntervals(j, 20) // no losses: fallback probes
	if a := j.LastAction(); a != 1 {
		t.Fatalf("loss-free fallback action %v, want +1", a)
	}
	j.OnInterval(cc.IntervalStats{
		Now: time.Second, Interval: j.cfg.Interval,
		AckedPackets: 50, SentPackets: 55, LostPackets: 2,
		AckedBytes: 50 * 1500, SentBytes: 55 * 1500,
		AvgRTT: 20 * time.Millisecond, MinRTT: 20 * time.Millisecond,
		FlowMinRTT: 20 * time.Millisecond,
	})
	if a := j.LastAction(); a != -1 {
		t.Fatalf("lossy fallback action %v, want -1", a)
	}
}

// TestApplyActionLastDitchGuard drives a non-finite action directly into
// Eq. 7 (bypassing decide) and checks the final backstop.
func TestApplyActionLastDitchGuard(t *testing.T) {
	j := guardedJury(nil)
	before := j.CWND()
	j.applyAction(math.NaN())
	if j.NonFiniteActions() != 1 {
		t.Fatalf("NonFiniteActions = %d, want 1", j.NonFiniteActions())
	}
	if !isFinite(j.CWND()) || j.CWND() > before {
		t.Fatalf("cwnd %v after NaN action (was %v): must retreat and stay finite", j.CWND(), before)
	}
	// A corrupted window itself is also repaired.
	j.cwnd = math.NaN()
	j.applyAction(0.5)
	if j.CWND() != j.cfg.MinCwnd {
		t.Fatalf("NaN cwnd not reset to floor: %v", j.CWND())
	}
}

// TestGuardQuiescentOnHealthyPolicy: the guard must be invisible on the
// normal path — no degradations, no clamping effects with the reference
// policy.
func TestGuardQuiescentOnHealthyPolicy(t *testing.T) {
	j := guardedJury(NewReferencePolicy())
	feedIntervals(j, 60)
	if j.DegradedDecisions() != 0 || j.NonFiniteActions() != 0 {
		t.Fatalf("guard fired on a healthy policy: degraded=%d nonfinite=%d",
			j.DegradedDecisions(), j.NonFiniteActions())
	}
}
