package simcore

import (
	"testing"
	"time"
)

// TestWheelPopOrderMatchesHeap is the wheel's core correctness property:
// for random schedules spread across heap-resident, level-0, level-1, and
// overflow distances — including events scheduled mid-run from inside
// callbacks — the wheel-fed engine must execute the exact event order a
// heap-only engine produces.
func TestWheelPopOrderMatchesHeap(t *testing.T) {
	run := func(seed uint64, noWheel bool) []uint64 {
		e := NewEngine()
		e.queue.noWheel = noWheel
		rng := NewRNG(seed)
		var order []uint64
		e.SetEventHook(func(at time.Duration, seq uint64) {
			order = append(order, seq)
		})
		// Delay spread: same-granule, level-0, level-1, and overflow-horizon
		// distances, with duplicates likely (ties exercise the schedAt/seq
		// keys). Each fired event reschedules a few successors while budget
		// remains, so scheduling also happens mid-run at nonzero Now.
		randomDelay := func() time.Duration {
			switch rng.Intn(4) {
			case 0:
				return time.Duration(rng.Intn(int(slot0Gran)))
			case 1:
				return time.Duration(rng.Intn(int(span0)))
			case 2:
				return time.Duration(rng.Intn(int(span1)))
			default:
				return span1 + time.Duration(rng.Intn(int(span1)))
			}
		}
		budget := 3000
		var spawn func()
		spawn = func() {
			for i, n := 0, rng.Intn(3); i < n && budget > 0; i++ {
				budget--
				e.ScheduleAfter(randomDelay(), spawn)
			}
		}
		for i := 0; i < 64; i++ {
			budget--
			e.ScheduleAfter(randomDelay(), spawn)
		}
		e.Run(10 * span1)
		return order
	}
	for seed := uint64(1); seed <= 5; seed++ {
		ref := run(seed, true)
		got := run(seed, false)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: wheel executed %d events, heap-only %d", seed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: pop order diverges at %d: wheel seq %d, heap seq %d",
					seed, i, got[i], ref[i])
			}
		}
		if len(ref) < 500 {
			t.Fatalf("seed %d: only %d events — spread too thin to exercise the wheel", seed, len(ref))
		}
	}
}

// TestWheelCancelAcrossSlotBoundaries cancels and re-arms timers parked at
// wheel distances (level 0, level 1, overflow) and checks that cancelled
// events never fire, replacements fire exactly once at the right time, and
// Active tracks wheel residency.
func TestWheelCancelAcrossSlotBoundaries(t *testing.T) {
	delays := []time.Duration{
		slot0Gran / 2,     // heap-resident from the start
		slot0Gran * 3,     // level 0
		slot0Gran + 1,     // level 0, just past the current granule
		span0 * 2,         // level 1
		span0 + slot0Gran, // level 1, just past level 0's horizon
		span1 + time.Hour, // overflow heap
	}
	e := NewEngine()
	fired := make(map[int]time.Duration)
	var timers []Timer
	for i, d := range delays {
		i, d := i, d
		timers = append(timers, e.ScheduleAfter(d, func() { fired[i] = e.Now() }))
	}
	for i, tm := range timers {
		if !tm.Active() {
			t.Fatalf("timer %d (delay %v) not Active while queued", i, delays[i])
		}
	}
	// Cancel every other timer, then re-arm each cancelled slot at a shifted
	// time that crosses into a different wheel level.
	replacement := make(map[int]time.Duration)
	for i := 0; i < len(timers); i += 2 {
		timers[i].Cancel()
		if timers[i].Active() {
			t.Fatalf("timer %d still Active after Cancel", i)
		}
		nd := delays[(i+3)%len(delays)] + slot0Gran
		replacement[i] = nd
		i := i
		e.ScheduleAfter(nd, func() { fired[100+i] = e.Now() })
	}
	e.Run(span1 + 2*time.Hour)
	for i, d := range delays {
		if i%2 == 0 {
			if _, ok := fired[i]; ok {
				t.Fatalf("cancelled timer %d fired", i)
			}
			want := replacement[i]
			if got, ok := fired[100+i]; !ok || got != want {
				t.Fatalf("replacement for %d: fired=%v at %v, want %v", i, ok, got, want)
			}
		} else if got, ok := fired[i]; !ok || got != d {
			t.Fatalf("timer %d: fired=%v at %v, want %v", i, ok, got, d)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
}

// TestWheelSlotAliasFiresOnTime schedules an event whose absolute level-1
// slot number aliases (mod slot count) a slot the cursor has already passed:
// the event must still fire at its exact time, after the cursor wraps around
// to its slot, and never early or late relative to neighbours.
func TestWheelSlotAliasFiresOnTime(t *testing.T) {
	e := NewEngine()
	// Drag the cursor off zero first so the wheel is mid-rotation.
	warm := slot1Gran + slot1Gran/2
	var warmAt time.Duration
	e.Schedule(warm, func() { warmAt = e.Now() })
	e.Run(warm)
	if warmAt != warm {
		t.Fatalf("warmup fired at %v, want %v", warmAt, warm)
	}
	// Now Now ~ 1.5*slot1Gran. An event just under span1 away lands in a
	// level-1 slot index the cursor has already cascaded this rotation.
	alias := e.Now() + span1 - slot1Gran/4
	near := e.Now() + span1 - slot1Gran - slot1Gran/4
	var got []time.Duration
	e.Schedule(alias, func() { got = append(got, e.Now()) })
	e.Schedule(near, func() { got = append(got, e.Now()) })
	e.Run(alias + time.Second)
	if len(got) != 2 || got[0] != near || got[1] != alias {
		t.Fatalf("alias firing order/time wrong: got %v, want [%v %v]", got, near, alias)
	}
}

// TestWheelStaleHandleIsInert mirrors TestTimerStaleHandleIsInert for
// wheel-resident events: once a wheel-parked event fires and its storage is
// recycled for a new event, the old Timer handle must be inert — Cancel must
// not touch the recycled event, and Active/At must report dead.
func TestWheelStaleHandleIsInert(t *testing.T) {
	e := NewEngine()
	// Park in a level-1 slot so the event travels wheel -> level 0 -> heap
	// before firing and recycling.
	old := e.ScheduleAfter(span0*2, func() {})
	if !old.Active() {
		t.Fatal("wheel-resident timer not Active")
	}
	e.Run(span0 * 2)
	if old.Active() {
		t.Fatal("fired timer still Active")
	}
	// Recycle the same Event storage for a replacement.
	var fired bool
	repl := e.ScheduleAfter(span0, func() { fired = true })
	old.Cancel() // stale: must not cancel the recycled event
	if old.At() != 0 {
		t.Fatalf("stale handle At = %v, want 0", old.At())
	}
	if !repl.Active() {
		t.Fatal("replacement timer deactivated by stale Cancel")
	}
	e.Run(e.Now() + span0)
	if !fired {
		t.Fatal("recycled event killed by stale handle Cancel")
	}
}

// TestWheelDrainReanchors lets the wheel empty completely while virtual time
// runs far ahead, then schedules wheel-distance work again: the cursor must
// re-anchor to the clock instead of forcing every future event through the
// overflow heap, and ordering must hold across the re-anchor.
func TestWheelDrainReanchors(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAfter(slot0Gran*2, func() { order = append(order, 0) })
	e.Run(100 * span1) // drain, clock ends far past the cursor
	e.ScheduleAfter(slot0Gran*3, func() { order = append(order, 1) })
	e.ScheduleAfter(slot0Gran*2, func() { order = append(order, 2) })
	if e.queue.count0 != 2 {
		t.Fatalf("post-drain wheel-distance events not parked in level 0: count0=%d", e.queue.count0)
	}
	e.Run(e.Now() + span0)
	want := []int{0, 2, 1}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
