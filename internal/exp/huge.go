package exp

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/cc"
	"repro/internal/cc/cubic"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/simcheck"
)

// This file builds the huge-scale stress scenario behind
// BenchmarkScenarioHuge: a parking-lot mesh — a chain of bottleneck links
// with thousands of single-segment flows plus a population of multi-segment
// flows stitching the chain together — sized in the tens of thousands of
// flows. It exists to exercise the sharded engine (netsim.RunSharded) at the
// scale the sequential engine cannot reach in interactive time, and to give
// bench.sh a stable events-per-second figure per shard count.

// HugeFlowsEnv names the environment variable that overrides the default
// flow population (10_000) of RunHuge when HugeOptions.TotalFlows is zero.
// check.sh sets it low for smoke runs; a 100k-flow run is
// JURY_HUGE_FLOWS=100000 with a multi-core machine and some patience.
const HugeFlowsEnv = "JURY_HUGE_FLOWS"

// HugeOptions parameterizes the parking-lot mesh.
type HugeOptions struct {
	// Segments is the number of chained bottleneck links (default 8). Every
	// segment is a partition atom, so shard counts up to Segments scale.
	Segments int
	// TotalFlows is the flow population (default: JURY_HUGE_FLOWS, or 10_000).
	// One in every spanStride flows crosses several consecutive segments; the
	// rest are single-segment locals spread round-robin.
	TotalFlows int
	// Rate is each segment's capacity in bits/second (default 1 Gbps).
	Rate float64
	// BufferBytes overrides each segment's queue capacity (default ~1 BDP at
	// a 30 ms RTT: Rate/8 · 0.030). The reduced-flow digest-parity smoke runs
	// deep-buffered so slow-start overshoot cannot cause drops — a drop on a
	// foreign shard is the one documented sequential/sharded divergence.
	BufferBytes int
	// Horizon is the simulated duration (default 2 s).
	Horizon time.Duration
	// Shards caps the shard count for RunSharded (default 1 = sequential).
	Shards int
	// Seed drives all randomness (pacing jitter).
	Seed uint64
	// Check attaches a simcheck invariant checker and records its digest.
	Check bool
	// CC overrides the per-flow controller factory (default: cubic, the
	// cheapest full controller — the benchmark measures the engine, not the
	// scheme).
	CC func(seed uint64) cc.Algorithm
}

// spanStride makes every 16th flow a multi-segment one, so a sharded run has
// steady cross-shard traffic without being dominated by it.
const spanStride = 16

func (o *HugeOptions) defaults() {
	if o.Segments <= 0 {
		o.Segments = 8
	}
	if o.TotalFlows <= 0 {
		o.TotalFlows = 10_000
		if v, err := strconv.Atoi(os.Getenv(HugeFlowsEnv)); err == nil && v > 0 {
			o.TotalFlows = v
		}
	}
	if o.Rate <= 0 {
		o.Rate = 1e9
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = int(o.Rate / 8 * 0.030) // ~1 BDP at 30 ms RTT
	}
	if o.Horizon <= 0 {
		o.Horizon = 2 * time.Second
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.CC == nil {
		o.CC = func(uint64) cc.Algorithm { return cubic.New() }
	}
}

// HugeResult reports one huge-scale run.
type HugeResult struct {
	// FlowCount and Segments echo the built topology.
	FlowCount int
	Segments  int
	// ShardCount is the number of shards the run actually used (a chain of n
	// segments partitions into min(n, Shards) shards).
	ShardCount int
	// Events is the total number of discrete events executed; ExecutedPerShard
	// breaks it down by shard.
	Events           int64
	ExecutedPerShard []int64
	// Digest is the simcheck digest (zero unless Check was set).
	Digest uint64
	// Stream is the streaming-observability summary (nil unless exp.Obs is
	// set). At huge scale this is the ONLY per-run fairness view: the mesh
	// records no per-flow series, so post-hoc metrics are unavailable.
	Stream *obs.StreamSummary
}

// BuildHuge assembles the parking-lot mesh without running it, so tests and
// benchmarks can attach observers first. It returns the network and the
// resolved options.
func BuildHuge(o HugeOptions) (*netsim.Network, HugeOptions) {
	o.defaults()
	n := netsim.New(netsim.Config{Seed: o.Seed})
	links := make([]*netsim.Link, o.Segments)
	for i := range links {
		links[i] = n.AddLink(netsim.LinkConfig{
			Rate: o.Rate,
			// Distinct positive delays keep every inter-segment edge cuttable
			// and give the partition a nontrivial lookahead matrix.
			Delay:       time.Duration(5+i%4) * time.Millisecond,
			BufferBytes: o.BufferBytes,
		})
	}
	// Stagger starts across the first quarter of the horizon so the engine
	// ramps up instead of detonating every flow at t=0.
	stagger := o.Horizon / 4 / time.Duration(o.TotalFlows)
	for i := 0; i < o.TotalFlows; i++ {
		seed := o.Seed*1_000_003 + uint64(i) + 1
		var path []*netsim.Link
		if i%spanStride == 0 {
			// Spanning flow: 2–4 consecutive segments starting at a rotating
			// offset — the cross-shard workload.
			span := 2 + (i/spanStride)%3
			if span > o.Segments {
				span = o.Segments
			}
			at := (i / spanStride) % (o.Segments - span + 1)
			path = links[at : at+span]
		} else {
			path = links[i%o.Segments : i%o.Segments+1]
		}
		// Nameless flows with a direct Alg handle: at a million flows, the
		// per-flow Sprintf name and factory closure would be three heap
		// allocations each for values the mesh never reads.
		n.AddFlow(netsim.FlowConfig{
			Path:  path,
			Start: time.Duration(i) * stagger,
			Alg:   o.CC(seed),
		})
	}
	return n, o
}

// RunHuge builds and runs the huge parking-lot mesh and reports event counts
// (and, with Check, the simcheck digest). Same options, same shard count →
// bit-identical results. With a resumable store attached, a previously
// completed run with the same resolved options is served from the store.
func RunHuge(o HugeOptions) (*HugeResult, error) {
	customCC := o.CC != nil
	o.defaults()
	st := Store
	key, cacheable := runstore.Key{}, false
	if st != nil {
		key, cacheable = HugeKey(o, customCC)
		if cacheable && StoreResume {
			if rec, ok := st.Get(key); ok {
				storeCounter("runstore_hits_total", "sweep runs served from the run store").Inc()
				return hugeFromRecord(o, rec), nil
			}
			storeCounter("runstore_misses_total", "sweep runs not found in the run store").Inc()
		}
	}
	liveRuns.Add(1)
	n, o := BuildHuge(o)
	var ck *simcheck.Checker
	if o.Check || ForceCheck {
		ck = simcheck.Attach(n)
	}
	var ob *obs.Observer
	if Obs != nil {
		shards := o.Shards
		if shards > o.Segments {
			shards = o.Segments
		}
		ob = Obs.Attach(n, shards)
		if ck != nil {
			ck.SetViolationHook(func(v simcheck.Violation) { ob.NoteViolation(v.Time, v.Rule) })
		}
	}
	sr, err := n.RunSharded(o.Horizon, o.Shards)
	if err != nil {
		return nil, fmt.Errorf("exp: huge: %w", err)
	}
	res := &HugeResult{
		FlowCount:        o.TotalFlows,
		Segments:         o.Segments,
		ShardCount:       sr.Partition.Shards,
		ExecutedPerShard: sr.Executed,
	}
	for _, e := range sr.Executed {
		res.Events += e
	}
	res.Stream = ob.Finish(o.Horizon)
	if ck != nil {
		ck.Finish()
		if err := ck.Err(); err != nil {
			return nil, fmt.Errorf("exp: huge: %w", err)
		}
		res.Digest = ck.Digest()
	}
	if st != nil && cacheable {
		if err := st.Put(hugeRecord(key, o, res)); err != nil {
			return nil, fmt.Errorf("exp: huge: %w", err)
		}
		storeCounter("runstore_appends_total", "run records appended to the run store").Inc()
	}
	return res, nil
}
