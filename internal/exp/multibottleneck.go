package exp

import (
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// MultiBottleneckResult reports the parking-lot fairness experiment of
// §5.1: a long flow crossing two bottlenecks competes with one cross flow
// on each. Max-min fairness gives every flow half of each link.
type MultiBottleneckResult struct {
	LongMbps   float64 // flow crossing both links
	Cross1Mbps float64 // flow on link 1 only
	Cross2Mbps float64 // flow on link 2 only
	// Link1Jain/Link2Jain are the fairness indices at each bottleneck
	// between the long flow and the local cross flow.
	Link1Jain float64
	Link2Jain float64
}

// MultiBottleneckOptions parameterizes the parking-lot run.
type MultiBottleneckOptions struct {
	Rate     float64
	Lifetime time.Duration
	Seed     uint64
}

func (o *MultiBottleneckOptions) defaults() {
	if o.Rate == 0 {
		o.Rate = 80e6
	}
	if o.Lifetime == 0 {
		o.Lifetime = 120 * time.Second
	}
}

// RunMultiBottleneck runs the parking-lot topology with Jury on all flows.
func RunMultiBottleneck(o MultiBottleneckOptions) (*MultiBottleneckResult, error) {
	o.defaults()
	n := netsim.New(netsim.Config{Seed: o.Seed})
	mk := func(delay time.Duration) *netsim.Link {
		return n.AddLink(netsim.LinkConfig{
			Rate: o.Rate, Delay: delay,
			BufferBytes: int(1.5 * o.Rate / 8 * 0.030),
		})
	}
	l1 := mk(8 * time.Millisecond)
	l2 := mk(7 * time.Millisecond)

	addFlow := func(name string, path []*netsim.Link, seed uint64) *netsim.Flow {
		return n.AddFlow(netsim.FlowConfig{
			Name: name, Path: path,
			CC: func() cc.Algorithm { return core.NewDefault(seed) },
		})
	}
	long := addFlow("long", []*netsim.Link{l1, l2}, 1)
	c1 := addFlow("cross1", []*netsim.Link{l1}, 2)
	c2 := addFlow("cross2", []*netsim.Link{l2}, 3)
	n.Run(o.Lifetime)

	from := o.Lifetime / 2
	res := &MultiBottleneckResult{
		LongMbps:   metrics.MeanThroughput(long, from, o.Lifetime) / 1e6,
		Cross1Mbps: metrics.MeanThroughput(c1, from, o.Lifetime) / 1e6,
		Cross2Mbps: metrics.MeanThroughput(c2, from, o.Lifetime) / 1e6,
	}
	res.Link1Jain = metrics.JainIndex([]float64{res.LongMbps, res.Cross1Mbps})
	res.Link2Jain = metrics.JainIndex([]float64{res.LongMbps, res.Cross2Mbps})
	return res, nil
}
