// Package obs is the streaming fairness observatory: constant-memory live
// metrics for runs too large to keep per-flow series for. It layers on the
// netsim tap fan-out and the coordinator window hook:
//
//   - per-shard mergeable accumulators — an exact-instant group table
//     (count/sum/sum-of-squares per recording instant, for windowed Jain
//     over throughput) plus log-bucketed quantile sketches for per-flow rate
//     and RTT — updated with zero allocations on the hot path;
//   - a merge at each due coordinator barrier (or, sequentially, at the
//     first event past each window boundary), emitting a FairnessSnapshot
//     series in virtual time: windowed and cumulative Jain, p50/p95/p99
//     rate and RTT, degraded-decision and fault counts;
//   - a per-shard flight recorder ring dumped as JSONL on trigger (see
//     recorder.go) — the black box of a million-flow run;
//   - a live /fairness surface (state.go) fed as snapshots are emitted.
//
// Correctness is pinned the telemetry way: the observer only reads — never
// schedules events or draws randomness — so an observed run is
// digest-identical to a bare one, and the cumulative streaming Jain equals
// the post-hoc metrics.TimewiseJain exactly (same instant grouping, same
// (Σx)²/(n·Σx²) per instant, same ≥2-samples rule, same empty→1
// convention) as long as no shard's instant table overflows; overflow
// degrades gracefully by quantizing instants to the recording interval.
// Memory is O(shards × window state), independent of flow count.
package obs

import (
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

// Options configures a Runtime.
type Options struct {
	// Window is the snapshot cadence in virtual time (default 500ms). The
	// effective cadence is max(Window, coordinator sync window) in sharded
	// runs: snapshots only materialize at barriers.
	Window time.Duration
	// FlightSize is the per-shard flight-recorder ring size in entries
	// (default 2048).
	FlightSize int
	// FlightDir is where flight dumps are written; "" disables dumping (the
	// rings still record, and Dump reports "").
	FlightDir string
	// MaxDumps caps JSONL dumps per run (default 8).
	MaxDumps int
	// FaultBurst is the injected-fault count within one snapshot window that
	// triggers a flight dump (default 64; <0 disables the trigger).
	FaultBurst int64
}

// Runtime is the process-wide observatory: options plus the live State fed
// by every attached run. A nil Runtime is the disabled observatory — Attach
// returns a nil Observer and every method no-ops.
type Runtime struct {
	opts  Options
	state *State
}

// New builds a Runtime.
func New(o Options) *Runtime {
	if o.Window <= 0 {
		o.Window = 500 * time.Millisecond
	}
	if o.FaultBurst == 0 {
		o.FaultBurst = 64
	}
	return &Runtime{opts: o, state: NewState()}
}

// State returns the live snapshot surface (nil for a nil Runtime).
func (rt *Runtime) State() *State {
	if rt == nil {
		return nil
	}
	return rt.state
}

// FairnessSnapshot is one emitted point of the streaming fairness series.
// Jain indices follow metrics.TimewiseJain's conventions; percentiles come
// from the cumulative sketches (the distribution of all samples up to T).
type FairnessSnapshot struct {
	T             time.Duration `json:"t_ns"`
	WindowJain    float64       `json:"window_jain"` // mean instant Jain within this window (1 if no multi-flow instant)
	CumJain       float64       `json:"cum_jain"`    // streaming TimewiseJain over the whole run so far
	Instants      int64         `json:"instants"`    // multi-flow instants in this window
	CumInstants   int64         `json:"cum_instants"`
	Samples       int64         `json:"samples"` // cumulative per-flow samples observed
	RateP50       float64       `json:"rate_p50_bps"`
	RateP95       float64       `json:"rate_p95_bps"`
	RateP99       float64       `json:"rate_p99_bps"`
	RTTP50        float64       `json:"rtt_p50_s"`
	RTTP95        float64       `json:"rtt_p95_s"`
	RTTP99        float64       `json:"rtt_p99_s"`
	Drops         int64         `json:"drops"`  // cumulative queue drops
	Faults        int64         `json:"faults"` // cumulative injected faults
	Degraded      int64         `json:"degraded"`
	DegradedDelta int64         `json:"degraded_delta"` // vs previous snapshot
	FaultDelta    int64         `json:"fault_delta"`
}

// StreamSummary is the compact whole-run digest Finish returns — what a
// runstore record or RobustnessTable keeps when full per-flow series are
// unaffordable.
type StreamSummary struct {
	FinalJain     float64 // == final CumJain, the streaming TimewiseJain
	MinWindowJain float64 // worst windowed Jain seen (transient unfairness); 1 if no window measured
	Snapshots     int64
	Samples       int64
	RateP50       float64
	RateP95       float64
	RateP99       float64
	RTTP50        float64
	RTTP95        float64
	RTTP99        float64
	Drops         int64
	Faults        int64
	Degraded      int64
}

// juryCounters is the structural slice of core.Jury the observer polls at
// snapshot boundaries (no core import: obs sits below the controller
// packages). The counters are atomics, safe to read from shard 0's worker
// while other shards are parked at the barrier.
type juryCounters interface {
	DegradedDecisions() int64
	NonFiniteActions() int64
}

// The instant group table: a fixed-size open-addressing map from exact
// recording instant (ns) to (n, Σx, Σx²). Canonical scenarios have a
// handful of distinct instants per window, so the table stays exact there;
// a million staggered flows overflow it, at which point instants quantize
// to the recording interval (bounded, deterministic, documented loss of
// instant resolution — never of samples).
const (
	groupSlots     = 512 // power of two
	groupLoadLimit = 448
)

type instGroup struct {
	t     int64 // instant in ns; n == 0 marks an empty slot
	n     int64
	sum   float64
	sumsq float64
}

type groupTable struct {
	slots    [groupSlots]instGroup
	used     int
	quantum  int64     // overflow quantization step (recording interval, ns)
	overflow instGroup // catch-all beyond even quantized capacity (t = -1)
}

func groupHash(t int64) int {
	return int((uint64(t) * 0x9e3779b97f4a7c15) >> (64 - 9)) // 2^9 slots
}

// insert folds v into the group for t, claiming an empty slot only when
// mayClaim. Returns false when t is absent and no slot may be claimed.
func (g *groupTable) insert(t int64, v float64, mayClaim bool) bool {
	h := groupHash(t)
	for i := 0; i < groupSlots; i++ {
		s := &g.slots[(h+i)&(groupSlots-1)]
		if s.n == 0 {
			if !mayClaim {
				return false
			}
			s.t, s.n, s.sum, s.sumsq = t, 1, v, v*v
			g.used++
			return true
		}
		if s.t == t {
			s.n++
			s.sum += v
			s.sumsq += v * v
			return true
		}
	}
	return false
}

func (g *groupTable) add(t int64, v float64) {
	if g.insert(t, v, g.used < groupLoadLimit) {
		return
	}
	if g.quantum > 0 {
		qt := (t + g.quantum/2) / g.quantum * g.quantum
		if g.insert(qt, v, g.used < groupSlots) {
			return
		}
	}
	g.overflow.t = -1
	g.overflow.n++
	g.overflow.sum += v
	g.overflow.sumsq += v * v
}

func (g *groupTable) reset() {
	g.slots = [groupSlots]instGroup{}
	g.used = 0
	g.overflow = instGroup{}
}

// shardAcc is one shard's accumulator set. Each is written only by the
// goroutine executing that shard's events; shard 0 reads them all at a
// barrier (workers parked) or, sequentially, inline.
type shardAcc struct {
	samples int64
	drops   int64
	faults  int64
	groups  groupTable
	rate    sketch
	rtt     sketch
}

// Observer instruments one run. Create it with Runtime.Attach before the
// run, call Finish after. A nil Observer no-ops everywhere.
type Observer struct {
	rt  *Runtime
	net *netsim.Network

	window time.Duration
	shards []shardAcc
	rec    *Recorder
	juries []juryCounters

	// Flush-time state: only touched by the goroutine firing the window hook
	// (shard 0's worker, or the single sequential goroutine).
	nextBoundary  time.Duration
	cumJainSum    float64
	cumInstants   int64
	lastDegraded  int64
	lastFaults    int64
	minWindowJain float64
	snaps         []FairnessSnapshot
	scratch       []instGroup
	mergedRate    sketch
	mergedRTT     sketch
	finished      bool
}

// Attach instruments n, chaining any previously installed tap (simcheck,
// telemetry) and claiming the network's window hook. shards must be at
// least the shard count the run will use (exp passes the requested
// max-shards; netsim.Flow.Shard always stays below it).
func (rt *Runtime) Attach(n *netsim.Network, shards int) *Observer {
	if rt == nil {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	o := &Observer{
		rt:            rt,
		net:           n,
		window:        rt.opts.Window,
		shards:        make([]shardAcc, shards),
		rec:           newRecorder(shards, rt.opts.FlightSize, rt.opts.FlightDir, rt.opts.MaxDumps),
		nextBoundary:  rt.opts.Window,
		minWindowJain: 1,
	}
	quantum := int64(n.RecordInterval())
	for i := range o.shards {
		o.shards[i].groups.quantum = quantum
	}
	for _, f := range n.Flows() {
		if j, ok := f.CC().(juryCounters); ok {
			o.juries = append(o.juries, j)
		}
	}
	n.SetTap(netsim.Taps(n.Tap(), o))
	n.SetWindowHook(o.due, o.fire)
	return o
}

// due reports whether a flush is owed once execution is known to have
// passed bound: strictly past nextBoundary means every sample recorded at
// T ≤ nextBoundary has executed, on every shard.
func (o *Observer) due(bound time.Duration) bool {
	return bound > o.nextBoundary
}

// fire merges and flushes. It runs with exclusive access to every shard's
// accumulators (shard 0's worker between the coordinator's exchange
// barriers, or the sole goroutine of a sequential run). Everything in the
// group tables is complete — all pending events are at ≥ bound > their
// instants — so flushing the whole table keeps the cumulative Jain exact.
func (o *Observer) fire(bound time.Duration) {
	o.flush(bound)
	for o.nextBoundary <= bound {
		o.nextBoundary += o.window
	}
}

// flush merges every shard's window state into one FairnessSnapshot
// labeled T = bound, publishes it, and arms the degraded/fault-burst dump
// triggers.
func (o *Observer) flush(bound time.Duration) {
	// Gather instant groups across shards.
	o.scratch = o.scratch[:0]
	var samples, drops, faults int64
	for i := range o.shards {
		s := &o.shards[i]
		samples += s.samples
		drops += s.drops
		faults += s.faults
		for j := range s.groups.slots {
			if s.groups.slots[j].n > 0 {
				o.scratch = append(o.scratch, s.groups.slots[j])
			}
		}
		if s.groups.overflow.n > 0 {
			o.scratch = append(o.scratch, s.groups.overflow)
		}
		s.groups.reset()
	}
	// Merge equal instants across shards (sort by t, fold runs).
	sortGroups(o.scratch)
	var jainSum float64
	var instants int64
	for i := 0; i < len(o.scratch); {
		g := o.scratch[i]
		j := i + 1
		for j < len(o.scratch) && o.scratch[j].t == g.t {
			g.n += o.scratch[j].n
			g.sum += o.scratch[j].sum
			g.sumsq += o.scratch[j].sumsq
			j++
		}
		i = j
		if g.n < 2 {
			continue // a lone flow is trivially fair; matches TimewiseJain
		}
		instants++
		if g.sumsq > 0 {
			jainSum += g.sum * g.sum / (float64(g.n) * g.sumsq)
		}
		// all-zero instant contributes 0, matching JainIndex's max==0 rule
	}
	o.cumJainSum += jainSum
	o.cumInstants += instants
	windowJain := 1.0
	if instants > 0 {
		windowJain = jainSum / float64(instants)
	}
	cumJain := 1.0
	if o.cumInstants > 0 {
		cumJain = o.cumJainSum / float64(o.cumInstants)
	}
	if instants > 0 && windowJain < o.minWindowJain {
		o.minWindowJain = windowJain
	}
	// Cumulative sketches: merge fresh each flush (cheap: shards × ~1000
	// buckets), so per-shard observes stay uncoordinated.
	o.mergedRate.reset()
	o.mergedRTT.reset()
	for i := range o.shards {
		o.mergedRate.merge(&o.shards[i].rate)
		o.mergedRTT.merge(&o.shards[i].rtt)
	}
	degraded := o.sumDegraded()
	snap := FairnessSnapshot{
		T:             bound,
		WindowJain:    windowJain,
		CumJain:       cumJain,
		Instants:      instants,
		CumInstants:   o.cumInstants,
		Samples:       samples,
		RateP50:       o.mergedRate.quantile(0.50),
		RateP95:       o.mergedRate.quantile(0.95),
		RateP99:       o.mergedRate.quantile(0.99),
		RTTP50:        o.mergedRTT.quantile(0.50),
		RTTP95:        o.mergedRTT.quantile(0.95),
		RTTP99:        o.mergedRTT.quantile(0.99),
		Drops:         drops,
		Faults:        faults,
		Degraded:      degraded,
		DegradedDelta: degraded - o.lastDegraded,
		FaultDelta:    faults - o.lastFaults,
	}
	o.snaps = append(o.snaps, snap)
	o.rt.state.publish(snap)
	o.rec.record(0, FlightEntry{
		VT: int64(bound), Kind: flightSnapshot,
		A: windowJain, B: cumJain, C: float64(samples),
	})
	if snap.DegradedDelta > 0 {
		o.rec.Dump("degraded")
	}
	if burst := o.rt.opts.FaultBurst; burst > 0 && snap.FaultDelta >= burst {
		o.rec.Dump("fault-burst")
	}
	o.lastDegraded = degraded
	o.lastFaults = faults
}

// sortGroups is an insertion sort: the scratch slice is tiny in the exact
// regime (instants per window × shards) and nearly sorted per shard, and
// avoiding sort.Slice keeps flush allocation-free.
func sortGroups(gs []instGroup) {
	for i := 1; i < len(gs); i++ {
		g := gs[i]
		j := i - 1
		for j >= 0 && gs[j].t > g.t {
			gs[j+1] = gs[j]
			j--
		}
		gs[j+1] = g
	}
}

func (o *Observer) sumDegraded() int64 {
	var s int64
	for _, j := range o.juries {
		s += j.DegradedDecisions()
	}
	return s
}

// Finish flushes the tail window (everything recorded since the last
// barrier flush, labeled at the horizon) and returns the whole-run summary.
// Call it once, after the run completes. Nil-safe: returns nil.
func (o *Observer) Finish(horizon time.Duration) *StreamSummary {
	if o == nil {
		return nil
	}
	if !o.finished {
		o.finished = true
		o.flush(horizon)
	}
	last := o.snaps[len(o.snaps)-1]
	return &StreamSummary{
		FinalJain:     last.CumJain,
		MinWindowJain: o.minWindowJain,
		Snapshots:     int64(len(o.snaps)),
		Samples:       last.Samples,
		RateP50:       last.RateP50,
		RateP95:       last.RateP95,
		RateP99:       last.RateP99,
		RTTP50:        last.RTTP50,
		RTTP95:        last.RTTP95,
		RTTP99:        last.RTTP99,
		Drops:         last.Drops,
		Faults:        last.Faults,
		Degraded:      last.Degraded,
	}
}

// Snapshots returns the emitted series (owned by the observer).
func (o *Observer) Snapshots() []FairnessSnapshot {
	if o == nil {
		return nil
	}
	return o.snaps
}

// Recorder returns the run's flight recorder (nil when disabled).
func (o *Observer) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// DumpFlight triggers a flight-recorder dump (e.g. from a panic handler).
func (o *Observer) DumpFlight(reason string) (string, error) {
	if o == nil {
		return "", nil
	}
	return o.rec.Dump(reason)
}

// NoteViolation records a simcheck invariant breach into the flight ring
// and dumps. exp wires this to simcheck.Checker.SetViolationHook so obs
// need not import simcheck.
func (o *Observer) NoteViolation(at time.Duration, rule string) {
	if o == nil {
		return
	}
	o.rec.record(0, FlightEntry{VT: int64(at), Kind: flightViolation, Rule: rule})
	o.rec.Dump("violation")
}

// FootprintBytes reports the observer's accumulator memory: O(shards), not
// O(flows) — the property the million-flow acceptance test pins.
func (o *Observer) FootprintBytes() int64 {
	if o == nil {
		return 0
	}
	perShard := int64(groupSlots*32 + 2*(sketchBuckets+2)*8 + 64)
	flight := int64(0)
	if o.rec != nil && len(o.rec.rings) > 0 {
		flight = int64(len(o.rec.rings)) * int64(len(o.rec.rings[0].e)) * 96
	}
	return int64(len(o.shards))*perShard + flight
}

// --- netsim.Tap ---

// SampleRecorded is the streaming seam: one recorded per-flow sample folds
// into the owning shard's instant group (windowed Jain) and rate/RTT
// sketches. Zero allocations.
func (o *Observer) SampleRecorded(f *netsim.Flow, p netsim.SeriesPoint) {
	s := &o.shards[f.Shard()]
	s.samples++
	s.groups.add(int64(p.T), p.ThroughputBps)
	s.rate.observe(p.ThroughputBps)
	if p.AvgRTT > 0 {
		s.rtt.observe(p.AvgRTT.Seconds())
	}
}

// PacketSent implements netsim.Tap.
func (o *Observer) PacketSent(f *netsim.Flow, bytes int) {}

// PacketAcked implements netsim.Tap.
func (o *Observer) PacketAcked(f *netsim.Flow, bytes int, rtt time.Duration) {}

// PacketLost implements netsim.Tap.
func (o *Observer) PacketLost(f *netsim.Flow, bytes int) {}

// QueueEnqueued implements netsim.Tap.
func (o *Observer) QueueEnqueued(l *netsim.Link, bytes int) {}

// QueueDeparted implements netsim.Tap.
func (o *Observer) QueueDeparted(l *netsim.Link, bytes int) {}

// QueueDropped implements netsim.Tap: a per-shard counter plus a flight
// entry.
func (o *Observer) QueueDropped(l *netsim.Link, bytes int, random bool) {
	sh := l.Shard()
	o.shards[sh].drops++
	r := 0.0
	if random {
		r = 1
	}
	o.rec.record(sh, FlightEntry{VT: int64(l.Now()), Kind: flightDrop, A: float64(bytes), B: r})
}

// FaultInjected implements netsim.Tap.
func (o *Observer) FaultInjected(l *netsim.Link, f *netsim.Flow, kind netsim.FaultKind, bytes int) {
	sh := l.Shard()
	o.shards[sh].faults++
	o.rec.record(sh, FlightEntry{
		VT: int64(l.Now()), Kind: flightFault, Flow: f.Name(),
		A: float64(bytes), B: float64(kind),
	})
}

// IntervalDelivered implements netsim.Tap: interval feedback goes into the
// flight ring (thr, RTT, losses, cwnd) — the context a post-mortem needs
// around a trigger.
func (o *Observer) IntervalDelivered(f *netsim.Flow, s cc.IntervalStats) {
	sh := f.Shard()
	thr := 0.0
	if s.Interval > 0 {
		thr = float64(s.AckedBytes) * 8 / s.Interval.Seconds()
	}
	o.rec.record(sh, FlightEntry{
		VT: int64(s.Now), Kind: flightInterval, Flow: f.Name(),
		A: thr, B: s.AvgRTT.Seconds(), C: float64(s.LostPackets), D: f.CC().CWND(),
	})
}
